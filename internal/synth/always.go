package synth

import (
	"fmt"
	"sort"

	"alice/internal/netlist"
	"alice/internal/rtl"
	"alice/internal/verilog"
)

// netlistInput aliases the netlist input op for readability in clock
// and reset checks.
const netlistInput = netlist.Input

// execEnv is the symbolic-execution environment of an always block.
// cur holds read values (blocking semantics); next holds the values to
// be registered (non-blocking). In combinational blocks only cur is used.
type execEnv struct {
	seq     bool
	cur     map[string][]int32
	next    map[string][]int32
	curMem  map[string][][]int32
	nextMem map[string][][]int32
}

func newExecEnv(seq bool) *execEnv {
	return &execEnv{
		seq:     seq,
		cur:     make(map[string][]int32),
		next:    make(map[string][]int32),
		curMem:  make(map[string][][]int32),
		nextMem: make(map[string][][]int32),
	}
}

func (e *execEnv) clone() *execEnv {
	c := newExecEnv(e.seq)
	for k, v := range e.cur {
		c.cur[k] = v
	}
	for k, v := range e.next {
		c.next[k] = v
	}
	for k, v := range e.curMem {
		c.curMem[k] = v
	}
	for k, v := range e.nextMem {
		c.nextMem[k] = v
	}
	return c
}

// analyzeSeq validates an edge-triggered block, recognizes the
// asynchronous reset idiom, and creates the flip-flops for every
// assigned register and memory.
func (s *synthesizer) analyzeSeq(f *frame, a *verilog.Always) (*seqInfo, error) {
	si := &seqInfo{regs: make(map[string][]regBit)}
	type edgeSig struct {
		name string
		neg  bool
	}
	var edges []edgeSig
	for _, ev := range a.Events {
		id, ok := ev.Sig.(*verilog.Ident)
		if !ok {
			return nil, &Error{f.node.Path, "sensitivity edge on a non-identifier"}
		}
		if ev.Edge == verilog.EdgeNone {
			return nil, &Error{f.node.Path, "mixed edge and level sensitivity is not supported"}
		}
		edges = append(edges, edgeSig{id.Name, ev.Edge == verilog.EdgeNeg})
	}
	resetVals := make(map[string]uint64)
	switch len(edges) {
	case 1:
		si.clockName = edges[0].name
		si.mainBody = a.Body
	case 2:
		// The reset is the edge signal tested by the top-level if.
		ifst, ok := a.Body.(*verilog.If)
		if !ok {
			if blk, okb := a.Body.(*verilog.Block); okb && len(blk.Stmts) == 1 {
				ifst, ok = blk.Stmts[0].(*verilog.If)
			}
			if !ok {
				return nil, &Error{f.node.Path, "two-edge always block must start with if (reset)"}
			}
		}
		rstName, activeLow, ok := resetCondSignal(ifst.Cond)
		if !ok {
			return nil, &Error{f.node.Path, "cannot recognize reset condition (expected rst or !rst_n)"}
		}
		var clkIdx = -1
		for i, e := range edges {
			if e.name != rstName {
				clkIdx = i
			} else if e.neg != activeLow {
				return nil, &Error{f.node.Path, fmt.Sprintf("reset %s edge does not match its polarity", rstName)}
			}
		}
		if clkIdx == -1 || edges[1-clkIdx].name != rstName {
			return nil, &Error{f.node.Path, "cannot identify clock among sensitivity edges"}
		}
		si.clockName = edges[clkIdx].name
		si.resetName = rstName
		si.resetBody = ifst.Then
		if ifst.Else == nil {
			return nil, &Error{f.node.Path, "async-reset block needs an else branch with the main logic"}
		}
		si.mainBody = ifst.Else
		if err := collectResetValues(f, si.resetBody, resetVals); err != nil {
			return nil, err
		}
	default:
		return nil, &Error{f.node.Path, fmt.Sprintf("%d sensitivity edges not supported", len(edges))}
	}

	// Create flip-flops for every assigned register, in sorted order for
	// determinism.
	assigned := assignedNets(si.mainBody)
	for r := range resetVals {
		found := false
		for _, a := range assigned {
			if a == r {
				found = true
				break
			}
		}
		if !found {
			assigned = append(assigned, r)
		}
	}
	sort.Strings(assigned)
	for _, name := range assigned {
		ni, ok := f.netInfo[name]
		if !ok {
			return nil, &Error{f.node.Path, fmt.Sprintf("assignment to unknown net %q", name)}
		}
		if ni.Kind != verilog.Reg {
			return nil, &Error{f.node.Path, fmt.Sprintf("procedural assignment to wire %q", name)}
		}
		if ni.Depth > 0 {
			if _, dup := f.mems[name]; dup {
				return nil, &Error{f.node.Path, fmt.Sprintf("memory %q written from multiple always blocks", name)}
			}
			grid := make([][]int32, ni.Depth)
			regs := make([][]regBit, ni.Depth)
			for el := 0; el < ni.Depth; el++ {
				grid[el] = make([]int32, ni.Width)
				regs[el] = make([]regBit, ni.Width)
				for b := 0; b < ni.Width; b++ {
					d := s.bd.DFF()
					grid[el][b] = d
					regs[el][b] = regBit{dff: d, q: d}
				}
			}
			f.mems[name] = grid
			f.memRegs[name] = regs
			si.memNames = append(si.memNames, name)
			continue
		}
		bits := f.nets[name]
		rv := resetVals[name]
		rbs := make([]regBit, ni.Width)
		for b := 0; b < ni.Width; b++ {
			if bits[b] != unassigned {
				return nil, &Error{f.node.Path, fmt.Sprintf("register %s bit %d has multiple drivers", name, b)}
			}
			d := s.bd.DFF()
			rb := regBit{dff: d, q: d}
			if b < 64 && (rv>>uint(b))&1 == 1 {
				rb.inverted = true
				rb.q = s.bd.Not(d)
			}
			rbs[b] = rb
			bits[b] = rb.q
		}
		si.regs[name] = rbs
	}
	return si, nil
}

// resetCondSignal recognizes "rst" (active high) or "!rst_n" / "~rst_n"
// (active low).
func resetCondSignal(e verilog.Expr) (name string, activeLow, ok bool) {
	switch x := e.(type) {
	case *verilog.Ident:
		return x.Name, false, true
	case *verilog.Unary:
		if x.Op == verilog.BANG || x.Op == verilog.TILDE {
			if id, ok := x.X.(*verilog.Ident); ok {
				return id.Name, true, true
			}
		}
	}
	return "", false, false
}

// collectResetValues walks the reset branch, which may contain only
// whole-register assignments of constants.
func collectResetValues(f *frame, st verilog.Stmt, vals map[string]uint64) error {
	switch x := st.(type) {
	case *verilog.Block:
		for _, s := range x.Stmts {
			if err := collectResetValues(f, s, vals); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Assign:
		id, ok := x.LHS.(*verilog.Ident)
		if !ok {
			return &Error{f.node.Path, "reset branch must assign whole registers"}
		}
		v, err := verilog.EvalConst(x.RHS, f.env)
		if err != nil {
			return &Error{f.node.Path, fmt.Sprintf("reset value for %s is not constant: %v", id.Name, err)}
		}
		vals[id.Name] = uint64(v)
		return nil
	case *verilog.Null:
		return nil
	}
	return &Error{f.node.Path, fmt.Sprintf("unsupported statement %T in reset branch", st)}
}

// execSeq symbolically executes the main body and connects the D inputs.
func (s *synthesizer) execSeq(f *frame, si *seqInfo) error {
	// Resolve and record the clock (and reset) signals; they must trace
	// back to primary inputs.
	if err := s.recordClockReset(f, si); err != nil {
		return err
	}
	env := newExecEnv(true)
	// Sorted register order throughout: SetD is order-insensitive, but
	// the Not nodes of inverted-reset bits are created here, and node
	// ids must not depend on map iteration order.
	regNames := sortedUnionKeys(si.regs, nil)
	for _, name := range regNames {
		rbs := si.regs[name]
		q := make([]int32, len(rbs))
		for i, rb := range rbs {
			q[i] = rb.q
		}
		env.cur[name] = q
		env.next[name] = q
	}
	if err := s.execStmt(f, env, si.mainBody); err != nil {
		return err
	}
	for _, name := range regNames {
		rbs := si.regs[name]
		next := env.next[name]
		for i, rb := range rbs {
			d := next[i]
			if rb.inverted {
				d = s.bd.Not(d)
			}
			s.bd.SetD(rb.dff, d)
		}
	}
	for _, name := range si.memNames {
		regs := f.memRegs[name]
		grid, touched := env.nextMem[name]
		for el := range regs {
			for b := range regs[el] {
				d := regs[el][b].q
				if touched {
					d = grid[el][b]
				}
				s.bd.SetD(regs[el][b].dff, d)
			}
		}
	}
	return nil
}

func (s *synthesizer) recordClockReset(f *frame, si *seqInfo) error {
	clk, err := s.resolveNet(f, si.clockName)
	if err != nil {
		return err
	}
	if len(clk) != 1 || clk[0] == unassigned {
		return &Error{f.node.Path, fmt.Sprintf("clock %s must be a driven 1-bit signal", si.clockName)}
	}
	if s.bd.N.Nodes[clk[0]].Op != netlistInput {
		return &Error{f.node.Path, fmt.Sprintf("clock %s must come from a primary input", si.clockName)}
	}
	s.clockPIs[clk[0]] = s.piName(clk[0])
	if si.resetName != "" {
		rst, err := s.resolveNet(f, si.resetName)
		if err != nil {
			return err
		}
		if len(rst) != 1 || rst[0] == unassigned {
			return &Error{f.node.Path, fmt.Sprintf("reset %s must be a driven 1-bit signal", si.resetName)}
		}
		if s.bd.N.Nodes[rst[0]].Op != netlistInput {
			return &Error{f.node.Path, fmt.Sprintf("reset %s must come from a primary input", si.resetName)}
		}
		s.resetPIs[rst[0]] = s.piName(rst[0])
	}
	return nil
}

func (s *synthesizer) piName(id int32) string {
	for i, pi := range s.bd.N.PIs {
		if pi == id {
			return s.bd.N.PINames[i]
		}
	}
	return fmt.Sprintf("node%d", id)
}

// execComb symbolically executes a combinational block and writes the
// results back into the frame's nets.
func (s *synthesizer) execComb(f *frame, a *verilog.Always) error {
	env := newExecEnv(false)
	if err := s.execStmt(f, env, a.Body); err != nil {
		return err
	}
	for _, name := range sortedUnionKeys(env.cur, nil) {
		bits := env.cur[name]
		ni, ok := f.netInfo[name]
		if !ok {
			continue
		}
		if ni.Kind != verilog.Reg {
			return &Error{f.node.Path, fmt.Sprintf("procedural assignment to wire %q", name)}
		}
		dst := f.nets[name]
		for i, v := range bits {
			if v == unassigned {
				continue
			}
			if dst[i] != unassigned {
				return &Error{f.node.Path, fmt.Sprintf("register %s bit %d has multiple drivers", name, i)}
			}
			dst[i] = v
		}
	}
	if len(env.nextMem) > 0 {
		return &Error{f.node.Path, "memory writes are only allowed in clocked always blocks"}
	}
	return nil
}

// execStmt symbolically executes one statement.
func (s *synthesizer) execStmt(f *frame, env *execEnv, st verilog.Stmt) error {
	switch x := st.(type) {
	case *verilog.Null:
		return nil
	case *verilog.Block:
		for _, sub := range x.Stmts {
			if err := s.execStmt(f, env, sub); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Assign:
		return s.execProcAssign(f, env, x)
	case *verilog.If:
		cbits, err := s.evalExpr(f, env, x.Cond, 0)
		if err != nil {
			return err
		}
		c := s.bd.ReduceOr(cbits)
		envT := env.clone()
		envE := env.clone()
		if err := s.execStmt(f, envT, x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			if err := s.execStmt(f, envE, x.Else); err != nil {
				return err
			}
		}
		return s.mergeEnv(f, env, c, envT, envE)
	case *verilog.Case:
		return s.execCase(f, env, x)
	case *verilog.For:
		return s.execFor(f, env, x)
	}
	return &Error{f.node.Path, fmt.Sprintf("unsupported statement %T", st)}
}

// execCase desugars a case statement into a nested if chain, handling
// casez wildcard patterns and full constant coverage without default.
func (s *synthesizer) execCase(f *frame, env *execEnv, c *verilog.Case) error {
	wSubj, err := s.natWidth(f, c.Subject)
	if err != nil {
		return err
	}
	w := wSubj
	for _, item := range c.Items {
		for _, pe := range item.Exprs {
			pw, err := s.natWidth(f, pe)
			if err != nil {
				return err
			}
			if pw > w {
				w = pw
			}
		}
	}
	subj, err := s.evalExpr(f, env, c.Subject, w)
	if err != nil {
		return err
	}
	subj = subj[:w]

	// Detect full constant coverage with no default (full case).
	hasDefault := false
	coverage := make(map[uint64]bool)
	wildcards := false
	for _, item := range c.Items {
		if item.Exprs == nil {
			hasDefault = true
		}
		for _, pe := range item.Exprs {
			if n, ok := pe.(*verilog.Number); ok {
				if n.DontCare != 0 {
					wildcards = true
				} else {
					coverage[n.Val] = true
				}
			}
		}
	}
	full := hasDefault
	if !full && !wildcards && w <= 20 && len(coverage) == 1<<uint(w) {
		full = true
	}

	items := c.Items
	var build func(idx int, env *execEnv) error
	build = func(idx int, env *execEnv) error {
		if idx >= len(items) {
			return nil
		}
		item := items[idx]
		if item.Exprs == nil { // default
			return s.execStmt(f, env, item.Body)
		}
		if full && idx == len(items)-1 {
			// Last arm of a fully covered case acts as default.
			return s.execStmt(f, env, item.Body)
		}
		var match int32 = 0
		for _, pe := range item.Exprs {
			m, err := s.caseMatch(f, env, subj, pe, w)
			if err != nil {
				return err
			}
			match = s.bd.Or(match, m)
		}
		envT := env.clone()
		envE := env.clone()
		if err := s.execStmt(f, envT, item.Body); err != nil {
			return err
		}
		if err := build(idx+1, envE); err != nil {
			return err
		}
		return s.mergeEnv(f, env, match, envT, envE)
	}
	return build(0, env)
}

// caseMatch builds the match condition of one case pattern against the
// subject, honoring casez wildcard bits.
func (s *synthesizer) caseMatch(f *frame, env *execEnv, subj []int32, pe verilog.Expr, w int) (int32, error) {
	bd := s.bd
	if n, ok := pe.(*verilog.Number); ok {
		var terms []int32
		for i := 0; i < w; i++ {
			var dc bool
			var bit bool
			if i < 64 {
				dc = (n.DontCare>>uint(i))&1 == 1
				bit = (n.Val>>uint(i))&1 == 1
			}
			if i >= n.Width || dc {
				if i >= n.Width {
					// Zero-extended pattern bit must match 0.
					terms = append(terms, bd.Not(subj[i]))
				}
				continue
			}
			if bit {
				terms = append(terms, subj[i])
			} else {
				terms = append(terms, bd.Not(subj[i]))
			}
		}
		return bd.ReduceAnd(terms), nil
	}
	pb, err := s.evalExpr(f, env, pe, w)
	if err != nil {
		return 0, err
	}
	var terms []int32
	for i := 0; i < w; i++ {
		terms = append(terms, bd.Xnor(subj[i], pb[i]))
	}
	return bd.ReduceAnd(terms), nil
}

// execFor unrolls a constant-bound loop.
func (s *synthesizer) execFor(f *frame, env *execEnv, fo *verilog.For) error {
	if fo.Init == nil || fo.Step == nil || fo.Cond == nil {
		return &Error{f.node.Path, "for loop requires init, condition, and step"}
	}
	if err := s.execProcAssign(f, env, fo.Init); err != nil {
		return err
	}
	for iter := 0; ; iter++ {
		if iter > s.loopLimit {
			return &Error{f.node.Path, "for loop exceeds unroll limit (non-constant bound?)"}
		}
		cb, err := s.evalExpr(f, env, fo.Cond, 0)
		if err != nil {
			return err
		}
		cv, ok := constValue(cb)
		if !ok {
			return &Error{f.node.Path, "for loop condition is not compile-time constant"}
		}
		if cv == 0 {
			return nil
		}
		if err := s.execStmt(f, env, fo.Body); err != nil {
			return err
		}
		if err := s.execProcAssign(f, env, fo.Step); err != nil {
			return err
		}
	}
}

// execProcAssign performs one procedural assignment in the environment.
func (s *synthesizer) execProcAssign(f *frame, env *execEnv, a *verilog.Assign) error {
	// Memory write?
	if idx, ok := a.LHS.(*verilog.Index); ok {
		if id, ok2 := idx.X.(*verilog.Ident); ok2 {
			if ni, ok3 := f.netInfo[id.Name]; ok3 && ni.Depth > 0 {
				return s.execMemWrite(f, env, id.Name, ni, idx.Idx, a.RHS)
			}
		}
	}
	refs, err := s.procTarget(f, env, a.LHS)
	if err != nil {
		return err
	}
	rhs, err := s.evalExpr(f, env, a.RHS, len(refs))
	if err != nil {
		return err
	}
	rhs = extend(rhs, len(refs))
	// Group per net and write back.
	perNet := make(map[string][]int)
	for i, ref := range refs {
		perNet[ref.net] = append(perNet[ref.net], i)
	}
	for name, idxs := range perNet {
		ni := f.netInfo[name]
		old := s.procRead(f, env, name, a.Blocking)
		bits := make([]int32, ni.Width)
		for i := range bits {
			if i < len(old) {
				bits[i] = old[i]
			} else {
				bits[i] = unassigned
			}
		}
		for _, i := range idxs {
			bits[refs[i].bit] = rhs[i]
		}
		s.procWrite(env, name, bits, a.Blocking)
	}
	return nil
}

// procRead returns the current value of a register for read-modify-write
// of partial assignments. Unwritten combinational registers read as
// unassigned, which only becomes an error if such a bit stays live.
func (s *synthesizer) procRead(f *frame, env *execEnv, name string, blocking bool) []int32 {
	if env.seq && !blocking {
		// Non-blocking partial writes accumulate on the next-state view.
		if b, ok := env.next[name]; ok {
			return b
		}
	}
	if b, ok := env.cur[name]; ok {
		return b
	}
	if bits, ok := f.nets[name]; ok {
		return bits
	}
	return nil
}

func (s *synthesizer) procWrite(env *execEnv, name string, bits []int32, blocking bool) {
	if env.seq {
		if blocking {
			env.cur[name] = bits
			env.next[name] = bits
		} else {
			env.next[name] = bits
		}
		return
	}
	env.cur[name] = bits
}

// procTarget destructures a procedural assignment target (no memories).
func (s *synthesizer) procTarget(f *frame, env *execEnv, e verilog.Expr) ([]bitRef, error) {
	switch x := e.(type) {
	case *verilog.Ident:
		ni, ok := f.netInfo[x.Name]
		if !ok {
			return nil, &Error{f.node.Path, fmt.Sprintf("assignment to unknown net %q", x.Name)}
		}
		refs := make([]bitRef, ni.Width)
		for i := range refs {
			refs[i] = bitRef{x.Name, i}
		}
		return refs, nil
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, &Error{f.node.Path, "nested index in assignment target"}
		}
		ni, ok := f.netInfo[id.Name]
		if !ok {
			return nil, &Error{f.node.Path, fmt.Sprintf("assignment to unknown net %q", id.Name)}
		}
		iv, err := s.constIndex(f, env, x.Idx)
		if err != nil {
			return nil, err
		}
		bit, err := bitOffset(ni, iv)
		if err != nil {
			return nil, &Error{f.node.Path, err.Error()}
		}
		return []bitRef{{id.Name, bit}}, nil
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, &Error{f.node.Path, "nested slice in assignment target"}
		}
		ni, ok := f.netInfo[id.Name]
		if !ok {
			return nil, &Error{f.node.Path, fmt.Sprintf("assignment to unknown net %q", id.Name)}
		}
		msb, err := verilog.EvalConst(x.MSB, f.env)
		if err != nil {
			return nil, &Error{f.node.Path, err.Error()}
		}
		lsb, err := verilog.EvalConst(x.LSB, f.env)
		if err != nil {
			return nil, &Error{f.node.Path, err.Error()}
		}
		lo, err := bitOffset(ni, lsb)
		if err != nil {
			return nil, &Error{f.node.Path, err.Error()}
		}
		hi, err := bitOffset(ni, msb)
		if err != nil {
			return nil, &Error{f.node.Path, err.Error()}
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		var refs []bitRef
		for i := lo; i <= hi; i++ {
			refs = append(refs, bitRef{id.Name, i})
		}
		return refs, nil
	case *verilog.Concat:
		var refs []bitRef
		for i := len(x.Parts) - 1; i >= 0; i-- {
			sub, err := s.procTarget(f, env, x.Parts[i])
			if err != nil {
				return nil, err
			}
			refs = append(refs, sub...)
		}
		return refs, nil
	}
	return nil, &Error{f.node.Path, fmt.Sprintf("unsupported assignment target %T", e)}
}

// constIndex evaluates an index expression that must be compile-time
// constant (possibly via an unrolled loop variable).
func (s *synthesizer) constIndex(f *frame, env *execEnv, e verilog.Expr) (int64, error) {
	if v, err := verilog.EvalConst(e, f.env); err == nil {
		return v, nil
	}
	bits, err := s.evalExpr(f, env, e, 0)
	if err != nil {
		return 0, err
	}
	if v, ok := constValue(bits); ok {
		return int64(v), nil
	}
	return 0, &Error{f.node.Path, "variable bit index on assignment target is not supported"}
}

// execMemWrite handles mem[idx] <= value in a clocked block.
func (s *synthesizer) execMemWrite(f *frame, env *execEnv, name string, ni *rtl.NetInfo, idxExpr, rhs verilog.Expr) error {
	if !env.seq {
		return &Error{f.node.Path, "memory writes are only allowed in clocked always blocks"}
	}
	base, err := s.memNextBase(f, env, name)
	if err != nil {
		return err
	}
	val, err := s.evalExpr(f, env, rhs, ni.Width)
	if err != nil {
		return err
	}
	val = extend(val, ni.Width)[:ni.Width]
	out := make([][]int32, len(base))
	copy(out, base)
	cv, isConst := int64(0), false
	if v, err := verilog.EvalConst(idxExpr, f.env); err == nil {
		cv, isConst = v, true
	} else {
		bits, err := s.evalExpr(f, env, idxExpr, 0)
		if err != nil {
			return err
		}
		if v, ok := constValue(bits); ok {
			cv, isConst = int64(v), true
		} else {
			// Variable index: every element gets a write-enable mux.
			for el := range out {
				eq := s.indexEquals(bits, uint64(int64(el)+ni.Base))
				row := make([]int32, ni.Width)
				for b := 0; b < ni.Width; b++ {
					row[b] = s.bd.Mux(eq, out[el][b], val[b])
				}
				out[el] = row
			}
			env.nextMem[name] = out
			return nil
		}
	}
	if isConst {
		el := int(cv - ni.Base)
		if el >= 0 && el < ni.Depth {
			out[el] = val
		}
		env.nextMem[name] = out
	}
	return nil
}

// mergeEnv folds the two branch environments back into env under the
// condition c (c true selects envT).
func (s *synthesizer) mergeEnv(f *frame, env *execEnv, c int32, envT, envE *execEnv) error {
	bd := s.bd
	mergeRegs := func(dst, t, e map[string][]int32) error {
		// Sorted traversal: Mux nodes are hash-consed but created on
		// first use, so the merge order defines node ids. Iterating the
		// map directly would make the netlist differ across runs.
		for _, name := range sortedUnionKeys(t, e) {
			tb, tok := t[name]
			eb, eok := e[name]
			switch {
			case tok && eok:
				if len(tb) != len(eb) {
					return &Error{f.node.Path, fmt.Sprintf("width mismatch merging %s", name)}
				}
				same := true
				for i := range tb {
					if tb[i] != eb[i] {
						same = false
						break
					}
				}
				if same {
					dst[name] = tb
					continue
				}
				out := make([]int32, len(tb))
				for i := range tb {
					switch {
					case tb[i] == eb[i]:
						out[i] = tb[i]
					case tb[i] == unassigned || eb[i] == unassigned:
						return &Error{f.node.Path,
							fmt.Sprintf("register %s is not assigned on all paths (latch inferred)", name)}
					default:
						out[i] = bd.Mux(c, eb[i], tb[i])
					}
				}
				dst[name] = out
			case tok != eok:
				return &Error{f.node.Path,
					fmt.Sprintf("register %s is not assigned on all paths (latch inferred)", name)}
			}
		}
		return nil
	}
	if err := mergeRegs(env.cur, envT.cur, envE.cur); err != nil {
		return err
	}
	if env.seq {
		if err := mergeRegs(env.next, envT.next, envE.next); err != nil {
			return err
		}
	}
	// Memories: a branch that did not touch a memory implicitly keeps
	// the pre-branch (or q) value. Sorted for the same node-id
	// determinism reason as the register merge above.
	for _, name := range sortedUnionKeys(envT.nextMem, envE.nextMem) {
		tg, tok := envT.nextMem[name]
		eg, eok := envE.nextMem[name]
		var baseGrid [][]int32
		if !tok || !eok {
			bg, err := s.memNextBase(f, env, name)
			if err != nil {
				return err
			}
			baseGrid = bg
		}
		if !tok {
			tg = baseGrid
		}
		if !eok {
			eg = baseGrid
		}
		out := make([][]int32, len(tg))
		for el := range tg {
			out[el] = make([]int32, len(tg[el]))
			for b := range tg[el] {
				if tg[el][b] == eg[el][b] {
					out[el][b] = tg[el][b]
				} else {
					out[el][b] = bd.Mux(c, eg[el][b], tg[el][b])
				}
			}
		}
		env.nextMem[name] = out
	}
	return nil
}

// sortedUnionKeys returns the union of two maps' keys in sorted order,
// so symbolic-execution merges create netlist nodes in a run-independent
// order (bit-determinism of the synthesis frontend).
func sortedUnionKeys[V any](a, b map[string]V) []string {
	out := make([]string, 0, len(a)+len(b))
	for k := range a {
		out = append(out, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// memNextBase returns the pending next-state grid of a memory (falling
// back to the registered q values).
func (s *synthesizer) memNextBase(f *frame, env *execEnv, name string) ([][]int32, error) {
	if g, ok := env.nextMem[name]; ok {
		return g, nil
	}
	g, ok := f.mems[name]
	if !ok {
		return nil, &Error{f.node.Path, fmt.Sprintf("memory %q written before flip-flop inference", name)}
	}
	cp := make([][]int32, len(g))
	for i := range g {
		cp[i] = append([]int32(nil), g[i]...)
	}
	return cp, nil
}
