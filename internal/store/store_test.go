package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetReopen(t *testing.T) {
	s, path := openTemp(t)
	want := map[string][]byte{
		"a":          []byte("alpha"),
		"b":          []byte(""),
		"config\x00": []byte{0, 1, 2, 255},
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite: last write wins.
	if err := s.Put("a", []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	want["a"] = []byte("alpha2")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Errorf("reopened Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if st := s2.Stats(); st.Recovered != 4 {
		t.Errorf("Recovered = %d, want 4 (3 puts + 1 overwrite)", st.Recovered)
	}
}

func TestValueIsolation(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	v := []byte("abc")
	s.Put("k", v)
	v[0] = 'X' // caller mutates its slice after Put
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatalf("Put did not copy: got %q", got)
	}
	got[0] = 'Y' // caller mutates the returned slice
	got2, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Fatalf("Get did not copy: got %q", got2)
	}
}

func TestDelete(t *testing.T) {
	s, path := openTemp(t)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatal(err) // deleting an absent key is a no-op
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still live")
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("a"); ok {
		t.Fatal("tombstone not replayed: deleted key resurrected on reopen")
	}
	if _, ok := s2.Get("b"); !ok {
		t.Fatal("surviving key lost")
	}
}

// TestTornTailRecovery is the acceptance-criteria crash test: a store
// whose log ends in a partially written frame (crash mid-append) must
// recover every committed record and truncate the torn bytes.
func TestTornTailRecovery(t *testing.T) {
	s, path := openTemp(t)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	sizeBefore, _ := os.Stat(path)

	// Simulate the crash: append a frame missing most of its payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{opPut, 200, 0, 0, 0, 200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("recovered %d records, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := s2.Get(fmt.Sprintf("key-%03d", i))
		if !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("record %d lost or damaged after recovery: %q, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.Truncated != int64(len(torn)) {
		t.Errorf("Truncated = %d bytes, want %d", st.Truncated, len(torn))
	}
	sizeAfter, _ := os.Stat(path)
	if sizeAfter.Size() != sizeBefore.Size() {
		t.Errorf("log not truncated back to %d bytes (got %d)", sizeBefore.Size(), sizeAfter.Size())
	}

	// And the recovered store must still accept writes at the cut.
	if err := s2.Put("post-crash", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailMultipleCrashes layers a second crash on a recovered log.
func TestTornTailMultipleCrashes(t *testing.T) {
	s, path := openTemp(t)
	s.Put("a", []byte("1"))
	s.Close()
	for crash := 0; crash < 3; crash++ {
		f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		f.Write([]byte{opPut, 5, 0, 0}) // torn mid-header
		f.Close()
		s2, err := Open(path)
		if err != nil {
			t.Fatalf("crash %d: %v", crash, err)
		}
		if v, ok := s2.Get("a"); !ok || string(v) != "1" {
			t.Fatalf("crash %d: committed record lost", crash)
		}
		s2.Put(fmt.Sprintf("b%d", crash), []byte("x"))
		s2.Close()
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s3.Len())
	}
}

// TestMidLogCorruptionRefused: damage in the middle of the log (valid
// frames after it) must be reported, not silently truncated away.
func TestMidLogCorruptionRefused(t *testing.T) {
	s, path := openTemp(t)
	s.Put("first", bytes.Repeat([]byte("x"), 100))
	s.Put("second", []byte("y"))
	s.Close()

	data, _ := os.ReadFile(path)
	// Flip a byte inside the first record's value.
	data[len(magic)+frameHeader+10] ^= 0xff
	os.WriteFile(path, data, 0o644)

	_, err := Open(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestTornMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	os.WriteFile(path, []byte(magic[:4]), 0o644) // crash during creation
	s, err := Open(path)
	if err != nil {
		t.Fatalf("torn magic: %v", err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	os.WriteFile(path, []byte("something else entirely\n"), 0o644)
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotUnderWrites(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	snap := s.Snapshot()
	s.Put("a", []byte("changed"))
	s.Delete("b")
	s.Put("c", []byte("3"))

	if v, _ := snap.Get("a"); string(v) != "1" {
		t.Errorf("snapshot saw later overwrite: %q", v)
	}
	if _, ok := snap.Get("b"); !ok {
		t.Error("snapshot saw later delete")
	}
	if _, ok := snap.Get("c"); ok {
		t.Error("snapshot saw later insert")
	}
	if got := snap.Keys(""); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("snapshot keys = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, path := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || string(v) != key {
					t.Errorf("read-own-write failed for %s", key)
					return
				}
				snap := s.Snapshot()
				snap.Get(key)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*50)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 8*50 {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), 8*50)
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 20; i++ {
		s.Put("churn", []byte(fmt.Sprintf("v%d", i)))
	}
	s.Put("keep", []byte("k"))
	s.Delete("churn")
	before := s.Stats().LogBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().LogBytes
	if after >= before {
		t.Errorf("compaction did not shrink the log: %d -> %d", before, after)
	}
	if _, ok := s.Get("churn"); ok {
		t.Error("deleted key live after compact")
	}
	if v, ok := s.Get("keep"); !ok || string(v) != "k" {
		t.Error("live key lost in compact")
	}
	// The compacted log must still be appendable and replayable.
	if err := s.Put("post", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, _ := openTemp(t)
	s.Put("a", []byte("1"))
	s.Close()
	if err := s.Put("b", []byte("2")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	// Reads keep serving from the index.
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatal("read after Close failed")
	}
}

func TestStats(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("a", []byte("1"))
	s.Get("a")
	s.Get("missing")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.Hits != 1 || st.Records != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LogBytes <= int64(len(magic)) {
		t.Errorf("LogBytes = %d", st.LogBytes)
	}
}

func TestReadSnapshotOfLiveAndClosedLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("b")
	s.Put("c", []byte("3"))

	// Cross-process read while the writer is still live: every frame
	// is fsynced before the Put is acknowledged, so the snapshot sees
	// the full committed state.
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Fatalf("live snapshot len = %d, want 2", snap.Len())
	}
	if v, ok := snap.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("snapshot a = %q %v", v, ok)
	}
	if _, ok := snap.Get("b"); ok {
		t.Fatal("deleted record visible in snapshot")
	}
	s.Close()

	// The read-only path must not have disturbed the writer's log.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().Truncated != 0 {
		t.Fatalf("ReadSnapshot dirtied the log: truncated %d bytes", s2.Stats().Truncated)
	}
}

func TestReadSnapshotMissingFileIsEmpty(t *testing.T) {
	snap, err := ReadSnapshot(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 0 {
		t.Fatalf("missing-file snapshot len = %d", snap.Len())
	}
}

func TestReadSnapshotToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	s, _ := Open(path)
	s.Put("a", []byte("1"))
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0xAA}) // torn frame prefix: a crash mid-append
	f.Close()

	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if v, ok := snap.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("snapshot a = %q %v", v, ok)
	}
}

func TestReadSnapshotRefusesMidLogDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	s, _ := Open(path)
	s.Put("a", []byte("aaaaaaaa"))
	s.Put("b", []byte("bbbbbbbb"))
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)+2] ^= 0xFF // flip a byte inside the first frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log damage: %v, want ErrCorrupt", err)
	}
}

func TestReadSnapshotRefusesBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte("NOT A STORE LOG, NOT AT ALL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v, want ErrCorrupt", err)
	}
}
