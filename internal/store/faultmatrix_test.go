package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alice/internal/iofault"
)

// seedLog creates a healthy log at path with one committed record, so
// fault sessions open it without any replay-time writes (magic
// stamping) muddying the injection-point counts.
func seedLog(t *testing.T, path string) {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatalf("seed open: %v", err)
	}
	if err := st.Put("seed", []byte("seed-value")); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
}

// TestFaultMatrix walks every write-path injection point: for each
// fault mode and each Nth operation, it runs a fixed Put workload
// under the scripted fault, heals the "disk", reopens, and asserts the
// invariant the store sells: an acknowledged Put is never lost, and a
// failed session never corrupts the log (reopen succeeds; ErrCorrupt
// would mean the store let a partial frame become mid-log damage).
func TestFaultMatrix(t *testing.T) {
	const numPuts = 6
	value := func(i int) []byte {
		return []byte(strings.Repeat(fmt.Sprintf("v%d-", i), 8))
	}

	modes := []struct {
		name  string
		rules func(n int) []*iofault.Rule
		// seals reports whether the fault is expected to seal the
		// write path (vs roll back and keep accepting).
		seals bool
	}{
		{"failWrite", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpWrite, Nth: n}}
		}, false},
		{"failOnceWrite", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpWrite, Nth: n, Mode: iofault.FailOnce}}
		}, false},
		{"shortWrite", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpWrite, Nth: n, Mode: iofault.Short}}
		}, false},
		{"tornWrite", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpWrite, Nth: n, Mode: iofault.Torn}}
		}, true},
		{"failSync", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpSync, Nth: n}}
		}, true},
		{"failOnceSync", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpSync, Nth: n, Mode: iofault.FailOnce}}
		}, true},
		{"crashAfterSync", func(n int) []*iofault.Rule {
			return []*iofault.Rule{{Op: iofault.OpSync, Nth: n, Mode: iofault.Crash}}
		}, true},
		{"shortWriteRollbackFails", func(n int) []*iofault.Rule {
			return []*iofault.Rule{
				{Op: iofault.OpWrite, Nth: n, Mode: iofault.Short},
				{Op: iofault.OpTruncate, Nth: 1},
			}
		}, true},
	}

	for _, mode := range modes {
		for n := 1; n <= numPuts; n++ {
			t.Run(fmt.Sprintf("%s/op%d", mode.name, n), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "log")
				seedLog(t, path)

				script := iofault.NewScript(mode.rules(n)...)
				fs := iofault.NewFS(nil, script)
				st, err := Open(path, Options{FS: fs})
				if err != nil {
					t.Fatalf("open under fault FS: %v", err)
				}

				acked := map[string][]byte{"seed": []byte("seed-value")}
				sawError := false
				for i := 0; i < numPuts; i++ {
					key := fmt.Sprintf("k%d", i)
					val := value(i)
					if err := st.Put(key, val); err == nil {
						acked[key] = val
					} else {
						sawError = true
					}
				}
				if !sawError {
					t.Fatalf("no Put saw the scripted fault (mode wired wrong?)")
				}

				if mode.seals {
					if st.Sealed() == nil {
						t.Fatalf("store not sealed after %s", mode.name)
					}
					// Sealed ≠ dead: reads keep serving from memory.
					if v, ok := st.Get("seed"); !ok || string(v) != "seed-value" {
						t.Fatalf("sealed store lost in-memory reads: %q %v", v, ok)
					}
					if err := st.Put("while-sealed", []byte("x")); !errors.Is(err, ErrSealed) {
						t.Fatalf("sealed Put error = %v, want ErrSealed", err)
					}
				}

				// The disk heals; a sealed store must come back via
				// Reopen, an unsealed one must just keep going.
				script.Clear()
				if st.Sealed() != nil {
					if err := st.Reopen(); err != nil {
						t.Fatalf("Reopen after heal: %v", err)
					}
					if st.Sealed() != nil {
						t.Fatalf("Reopen did not lift the seal")
					}
				}
				if err := st.Put("healed", []byte("healed-value")); err != nil {
					t.Fatalf("Put after heal: %v", err)
				}
				acked["healed"] = []byte("healed-value")
				st.Close()

				// Reboot: a fresh process on the real OS must see every
				// acknowledged record. An Open error here would mean the
				// fault session corrupted the log.
				st2, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after reboot: %v", err)
				}
				defer st2.Close()
				for k, want := range acked {
					got, ok := st2.Get(k)
					if !ok {
						t.Errorf("acknowledged record %q lost after %s", k, mode.name)
						continue
					}
					if string(got) != string(want) {
						t.Errorf("record %q = %q, want %q", k, got, want)
					}
				}
			})
		}
	}
}

// TestRollbackKeepsSessionAlive pins the append-rollback behaviour: a
// failed write is cut back off the log and the very next Put in the
// same session succeeds and lands cleanly after the last committed
// frame.
func TestRollbackKeepsSessionAlive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	seedLog(t, path)
	script := iofault.NewScript(&iofault.Rule{Op: iofault.OpWrite, Nth: 2, Mode: iofault.Short, Heal: true})
	st, err := Open(path, Options{FS: iofault.NewFS(nil, script)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", []byte("1")); err != nil {
		t.Fatalf("put a: %v", err)
	}
	if err := st.Put("b", []byte("2")); err == nil {
		t.Fatalf("put b did not see the short write")
	}
	if got := st.Stats().Rollbacks; got != 1 {
		t.Fatalf("rollbacks = %d, want 1", got)
	}
	if st.Sealed() != nil {
		t.Fatalf("rolled-back store sealed: %v", st.Sealed())
	}
	if err := st.Put("c", []byte("3")); err != nil {
		t.Fatalf("put c after rollback: %v", err)
	}
	st.Close()

	st2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	for _, k := range []string{"seed", "a", "c"} {
		if _, ok := st2.Get(k); !ok {
			t.Errorf("record %q lost", k)
		}
	}
	if _, ok := st2.Get("b"); ok {
		t.Errorf("unacknowledged, rolled-back record %q present", "b")
	}
	if st2.Stats().Truncated != 0 {
		t.Errorf("reopen truncated %d bytes; rollback left a dirty tail", st2.Stats().Truncated)
	}
}

// TestOpenRefusesWhenTornTailCannotBeCut: recovery itself needs the
// disk; if the truncate that removes a torn tail fails, Open must
// return the error instead of pretending the log is clean.
func TestOpenRefusesWhenTornTailCannotBeCut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	seedLog(t, path)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0xAA, 0xBB}) // torn frame prefix
	f.Close()

	script := iofault.NewScript(&iofault.Rule{Op: iofault.OpTruncate, Nth: 1})
	if _, err := Open(path, Options{FS: iofault.NewFS(nil, script)}); err == nil {
		t.Fatalf("Open succeeded with an uncuttable torn tail")
	}
	// With a healthy disk the same log recovers.
	st, err := Open(path)
	if err != nil {
		t.Fatalf("healthy reopen: %v", err)
	}
	defer st.Close()
	if _, ok := st.Get("seed"); !ok {
		t.Fatalf("seed record lost")
	}
}

// TestCompactFaults walks the compaction injection points: a failed
// rename keeps the old log intact and the store writable; a crash
// right after the rename leaves the compacted log as the valid state;
// a failed post-rename reopen seals the store and Reopen heals it.
func TestCompactFaults(t *testing.T) {
	setup := func(t *testing.T, fs iofault.FS) (*Store, string) {
		path := filepath.Join(t.TempDir(), "log")
		seedLog(t, path)
		st, err := Open(path, Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		st.Put("live", []byte("live-value"))
		st.Put("dead", []byte("x"))
		st.Delete("dead")
		return st, path
	}

	t.Run("renameFails", func(t *testing.T) {
		script := iofault.NewScript(&iofault.Rule{Op: iofault.OpRename, Nth: 1, Mode: iofault.FailOnce})
		st, path := setup(t, iofault.NewFS(nil, script))
		if err := st.Compact(); err == nil {
			t.Fatalf("compact did not see the rename fault")
		}
		// Old log intact, store still writable; a later compact works.
		if err := st.Put("after", []byte("y")); err != nil {
			t.Fatalf("put after failed compact: %v", err)
		}
		if err := st.Compact(); err != nil {
			t.Fatalf("second compact: %v", err)
		}
		st.Close()
		verifyLive(t, path)
	})

	t.Run("crashAfterRename", func(t *testing.T) {
		script := iofault.NewScript(&iofault.Rule{Op: iofault.OpRename, Nth: 1, Mode: iofault.Crash})
		st, path := setup(t, iofault.NewFS(nil, script))
		if err := st.Compact(); err == nil {
			t.Fatalf("compact did not crash")
		}
		st.Close()
		verifyLive(t, path)
	})

	t.Run("postRenameReopenFails", func(t *testing.T) {
		// The compacted log lands (rename ok) but reopening it fails:
		// the store must seal, and Reopen must heal. Opens through this
		// FS: #1 setup's Open, #2 the .compact temp file, #3 the
		// post-rename reopen — the injection point.
		script := iofault.NewScript(&iofault.Rule{Op: iofault.OpOpen, Nth: 3, Mode: iofault.FailOnce})
		st, path := setup(t, iofault.NewFS(nil, script))
		if err := st.Compact(); err == nil {
			t.Fatalf("compact did not see the open fault")
		}
		if st.Sealed() == nil {
			t.Fatalf("store not sealed after losing its descriptor")
		}
		if err := st.Reopen(); err != nil {
			t.Fatalf("Reopen: %v", err)
		}
		if err := st.Put("after", []byte("y")); err != nil {
			t.Fatalf("put after heal: %v", err)
		}
		st.Close()
		verifyLive(t, path)
	})
}

// verifyLive reopens path on the real OS and checks the canonical
// live set of the compaction tests.
func verifyLive(t *testing.T, path string) {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatalf("verify reopen: %v", err)
	}
	defer st.Close()
	if v, ok := st.Get("live"); !ok || string(v) != "live-value" {
		t.Errorf("live record: %q %v", v, ok)
	}
	if _, ok := st.Get("seed"); !ok {
		t.Errorf("seed record lost")
	}
	if _, ok := st.Get("dead"); ok {
		t.Errorf("deleted record resurrected")
	}
}

// TestStaleCompactFileRemovedOnOpen: a crash between writing the
// .compact temp file and renaming it leaves a stale sibling; Open must
// clean it up and serve from the main log.
func TestStaleCompactFileRemovedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	seedLog(t, path)
	stale := path + ".compact"
	if err := os.WriteFile(stale, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatalf("open with stale compact file: %v", err)
	}
	defer st.Close()
	if _, ok := st.Get("seed"); !ok {
		t.Fatalf("seed record lost")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale compact file not removed: %v", err)
	}
}
