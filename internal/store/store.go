// Package store implements the crash-safe, disk-backed result store of
// the redaction service: a single append-only record log plus an
// in-memory index rebuilt on open. It memoizes characterization and
// attack results across process restarts, designs, and clients, keyed
// by Config.Key() + a canonical netlist content hash (the callers'
// convention; the store itself is an opaque string→bytes map).
//
// Durability model:
//
//   - Every record is framed with a length header and a CRC32 over its
//     payload. Commit appends the frame and (by default) fsyncs before
//     the write is acknowledged, so an acknowledged Put survives a
//     crash.
//   - Open replays the log to rebuild the index. A torn tail — a
//     partially written frame from a crash mid-append — fails its
//     length or CRC check; the log is truncated at the last good
//     record and every record before it is recovered. Corruption is
//     only ever accepted at the tail: a bad frame followed by more
//     readable data is reported as an error rather than silently
//     dropped, since it means the log was damaged, not torn.
//   - Writers append under a lock; readers are never blocked by the
//     disk. Snapshot() captures an O(live-set) point-in-time view that
//     subsequent writes do not disturb (values are immutable once
//     stored).
//
// The log is an intentional minimal subset of the log-structured KV
// design (cf. the Go-DB exemplar's kv-store): no B-tree, because the
// working set is small enough to index in memory, and no background
// compaction, because overwrites are rare (results are content-keyed).
// Compact() exists for the job journal, which does delete.
//
// Failure domains: all file I/O goes through an injectable
// iofault.FS/File (Options.FS; the default is the real OS), so every
// injection point — write, fsync, truncate, rename — is walked by the
// fault-matrix test. A failed append is rolled back (the log is
// truncated to the last committed frame) so the next append lands on a
// clean tail; if the rollback itself fails, or an fsync fails (after
// a failed fsync the page-cache state is unknowable, so retrying the
// same fd could silently "commit" data that never reached the disk),
// the store seals its write path: Put/Delete/Compact return the
// sealing error (wrapped in ErrSealed), while Get/Snapshot keep
// serving from the in-memory index. Reopen() re-probes the disk — it
// replays the log through a fresh descriptor and, on success, swaps in
// the replayed state and lifts the seal. The serve layer uses this for
// degraded-mode operation with background re-probing.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"alice/internal/iofault"
)

// magic heads every log file; versioned so a future format change can
// refuse (or migrate) old logs instead of misparsing them.
const magic = "ALICESTORE1\n"

// Record frame layout, after the file magic:
//
//	op      uint8  — opPut or opDel
//	keyLen  uint32 (LE)
//	valLen  uint32 (LE)
//	crc     uint32 (LE) — CRC32 (IEEE) over op, keyLen, valLen, key, val
//	key     keyLen bytes
//	val     valLen bytes (empty for opDel)
const (
	opPut = 0x01
	opDel = 0x02

	frameHeader = 1 + 4 + 4 + 4
	// maxKeyLen/maxValLen bound a frame so a corrupt length field can't
	// drive a giant allocation during replay.
	maxKeyLen = 1 << 20 // 1 MiB
	maxValLen = 1 << 28 // 256 MiB
)

// ErrCorrupt reports mid-log damage (a bad frame with readable data
// after it). Tail damage is not an error: it is truncated on open.
var ErrCorrupt = errors.New("store: log corrupt")

// ErrSealed wraps the error that sealed the write path: an fsync
// failure, or an append failure whose rollback also failed. A sealed
// store still serves reads from memory; Reopen lifts the seal once the
// disk answers again.
var ErrSealed = errors.New("store: write path sealed")

// Stats reports store effectiveness and footprint.
type Stats struct {
	// Records is the number of live keys.
	Records int
	// LogBytes is the on-disk log size, including dead records.
	LogBytes int64
	// Puts, Deletes, Gets count operations since open; Hits counts the
	// Gets that found a value.
	Puts    int
	Deletes int
	Gets    int
	Hits    int
	// Recovered is the number of records replayed at open; Truncated
	// is the number of torn-tail bytes discarded.
	Recovered int
	Truncated int64
	// Rollbacks counts appends whose write failed and whose partial
	// frame was successfully cut back off the log; Seals counts the
	// times the write path sealed; Reopens counts successful Reopen
	// probes that lifted a seal.
	Rollbacks int
	Seals     int
	Reopens   int
}

// Store is a disk-backed string→bytes map. It is safe for concurrent
// use; values handed in and out are copied, so callers may mutate
// their slices freely.
type Store struct {
	mu    sync.RWMutex
	fs    iofault.FS
	f     iofault.File
	path  string
	index map[string][]byte
	size  int64
	fsync bool
	stats Stats
	// sealed, when non-nil, is the error that shut the write path
	// (fsync failure or an unrecoverable append). Reads keep serving.
	sealed error
	// closed rejects writes after Close so a shut-down service fails
	// loudly instead of appending to a closed file descriptor.
	closed bool
}

// Options tunes Open.
type Options struct {
	// NoSync disables the fsync on every commit. Only for tests and
	// throwaway stores: a crash may then lose acknowledged writes
	// (but never corrupt earlier ones).
	NoSync bool
	// FS overrides the file system (fault-injection tests). Nil means
	// the real OS.
	FS iofault.FS
}

// Open opens (creating if needed) the log at path and replays it into
// the in-memory index. A torn tail is truncated; mid-log corruption
// returns ErrCorrupt.
func Open(path string, opts ...Options) (*Store, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	fs := o.FS
	if fs == nil {
		fs = iofault.OS{}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// A leftover .compact file is a compaction the previous process
	// started but never renamed into place; it holds no committed state
	// the main log does not.
	_ = fs.Remove(path + ".compact")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		fs:    fs,
		f:     f,
		path:  path,
		index: make(map[string][]byte),
		fsync: !o.NoSync,
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay rebuilds the index from the log, truncating a torn tail.
func (s *Store) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	if size == 0 {
		// Fresh log: stamp the magic.
		if _, err := s.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("store: writing magic: %w", err)
		}
		if s.fsync {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		s.size = int64(len(magic))
		return nil
	}
	if size < int64(len(magic)) {
		// The magic itself was torn by a crash at creation: the log
		// holds no records, so restart it.
		return s.truncateTail(0, size)
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(s.f, head); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("%w: %s is not a store log (bad magic)", ErrCorrupt, s.path)
	}

	// Read the whole log once; replay frames from memory. The log is
	// the in-memory index's persistent form, so it fits by definition.
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	off := 0
	good := 0 // bytes of data covered by valid frames
	for off < len(data) {
		key, val, op, n, ok := parseFrame(data[off:])
		if !ok {
			break
		}
		switch op {
		case opPut:
			s.index[key] = val
		case opDel:
			delete(s.index, key)
		}
		s.stats.Recovered++
		off += n
		good = off
	}
	if good < len(data) {
		// Tail damage is only acceptable as a torn final frame. If a
		// *valid* frame parses anywhere after the damage, the middle of
		// the log was corrupted and truncating would silently drop
		// committed records — refuse instead.
		for probe := good + 1; probe < len(data); probe++ {
			if _, _, _, _, ok := parseFrame(data[probe:]); ok {
				return fmt.Errorf("%w: bad frame at offset %d with valid data after it",
					ErrCorrupt, int64(good)+int64(len(magic)))
			}
		}
		return s.truncateTail(int64(len(magic))+int64(good), size)
	}
	s.size = size
	return nil
}

// truncateTail cuts the log to keep bytes and re-appends the magic if
// the file restarts from scratch.
func (s *Store) truncateTail(keep, was int64) error {
	if keep < int64(len(magic)) {
		keep = 0
	}
	if err := s.f.Truncate(keep); err != nil {
		return fmt.Errorf("store: truncating torn tail: %w", err)
	}
	if _, err := s.f.Seek(keep, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.stats.Truncated = was - keep
	s.size = keep
	if keep == 0 {
		if _, err := s.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.size = int64(len(magic))
	}
	if s.fsync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// parseFrame decodes one frame from b. ok is false when b holds no
// complete, CRC-valid frame at its start.
func parseFrame(b []byte) (key string, val []byte, op byte, n int, ok bool) {
	if len(b) < frameHeader {
		return "", nil, 0, 0, false
	}
	op = b[0]
	if op != opPut && op != opDel {
		return "", nil, 0, 0, false
	}
	keyLen := binary.LittleEndian.Uint32(b[1:5])
	valLen := binary.LittleEndian.Uint32(b[5:9])
	crc := binary.LittleEndian.Uint32(b[9:13])
	if keyLen > maxKeyLen || valLen > maxValLen {
		return "", nil, 0, 0, false
	}
	n = frameHeader + int(keyLen) + int(valLen)
	if len(b) < n {
		return "", nil, 0, 0, false
	}
	h := crc32.NewIEEE()
	h.Write(b[:9])
	h.Write(b[frameHeader:n])
	if h.Sum32() != crc {
		return "", nil, 0, 0, false
	}
	key = string(b[frameHeader : frameHeader+int(keyLen)])
	val = append([]byte(nil), b[frameHeader+int(keyLen):n]...)
	return key, val, op, n, true
}

// appendFrame writes and (optionally) fsyncs one frame. A failed write
// is rolled back (the partial frame is cut off the log) so the next
// append starts on a committed boundary; an unrecoverable rollback or
// a failed fsync seals the write path.
func (s *Store) appendFrame(op byte, key string, val []byte) error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	if s.sealed != nil {
		return fmt.Errorf("%w: %w", ErrSealed, s.sealed)
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key too long (%d bytes)", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value too long (%d bytes)", len(val))
	}
	frame := make([]byte, frameHeader+len(key)+len(val))
	frame[0] = op
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(frame[5:9], uint32(len(val)))
	copy(frame[frameHeader:], key)
	copy(frame[frameHeader+len(key):], val)
	h := crc32.NewIEEE()
	h.Write(frame[:9])
	h.Write(frame[frameHeader:])
	binary.LittleEndian.PutUint32(frame[9:13], h.Sum32())
	if _, err := s.f.Write(frame); err != nil {
		// A failed (possibly short) write may have left a prefix of the
		// frame on disk. Left there, the *next* append would land after
		// it and turn the partial frame into mid-log corruption — so
		// cut the log back to the last committed record now.
		s.rollback(err)
		return fmt.Errorf("store: append: %w", err)
	}
	if s.fsync {
		if err := s.f.Sync(); err != nil {
			// After a failed fsync the page-cache state is unknowable
			// (retrying the same descriptor can report success without
			// the data ever reaching the disk), so no further append is
			// trustworthy: seal until a Reopen re-probes the disk.
			s.seal(fmt.Errorf("store: fsync: %w", err))
			return fmt.Errorf("store: fsync: %w", err)
		}
	}
	s.size += int64(len(frame))
	return nil
}

// rollback cuts a partially appended frame back off the log (caller
// holds the write lock). If the disk refuses even the rollback, the
// write path seals — nothing more can safely be appended.
func (s *Store) rollback(cause error) {
	if err := s.f.Truncate(s.size); err != nil {
		s.seal(fmt.Errorf("store: append failed (%v) and rollback failed: %w", cause, err))
		return
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		s.seal(fmt.Errorf("store: append failed (%v) and rollback seek failed: %w", cause, err))
		return
	}
	s.stats.Rollbacks++
}

// seal shuts the write path (caller holds the write lock).
func (s *Store) seal(cause error) {
	if s.sealed == nil {
		s.sealed = cause
		s.stats.Seals++
	}
}

// Sealed returns the error that sealed the write path, or nil when the
// store accepts writes. Reads work either way.
func (s *Store) Sealed() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed
}

// Reopen re-probes the disk through a fresh descriptor: it replays the
// log into a fresh index and, on success, swaps in the replayed state
// and lifts any seal. Acknowledged records are on disk by the
// durability contract, so the replayed index is never behind what a
// crash-restart would see. Used by the serve layer's degraded-mode
// probe loop; safe to call on a healthy store (it is then just a
// consistency re-check).
func (s *Store) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	f, err := s.fs.OpenFile(s.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen: %w", err)
	}
	probe := &Store{
		fs:    s.fs,
		f:     f,
		path:  s.path,
		index: make(map[string][]byte),
		fsync: s.fsync,
	}
	if err := probe.replay(); err != nil {
		f.Close()
		return err
	}
	// Replay can succeed without writing anything; prove the disk also
	// accepts a flush before declaring the write path healthy.
	if s.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: reopen probe sync: %w", err)
		}
	}
	old := s.f
	s.f = f
	s.index = probe.index
	s.size = probe.size
	s.stats.Recovered += probe.stats.Recovered
	s.stats.Truncated += probe.stats.Truncated
	if s.sealed != nil {
		s.stats.Reopens++
		s.sealed = nil
	}
	old.Close()
	return nil
}

// Put commits key→val. The write is durable (fsynced) when Put
// returns, unless the store was opened with NoSync.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendFrame(opPut, key, val); err != nil {
		return err
	}
	s.index[key] = append([]byte(nil), val...)
	s.stats.Puts++
	return nil
}

// Delete removes key (a no-op if absent). The tombstone is durable
// when Delete returns.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.appendFrame(opDel, key, nil); err != nil {
		return err
	}
	delete(s.index, key)
	s.stats.Deletes++
	return nil
}

// Get returns a copy of the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	v, ok := s.index[key]
	if !ok {
		return nil, false
	}
	s.stats.Hits++
	return append([]byte(nil), v...), true
}

// Has reports whether key is live, without counting a Get.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns the live keys with the prefix, sorted — a convenience
// over Snapshot().Keys for callers (e.g. the job journal) that only
// enumerate once.
func (s *Store) Keys(prefix string) []string {
	return s.Snapshot().Keys(prefix)
}

// Snapshot is a point-in-time, immutable view of the store.
type Snapshot struct {
	m map[string][]byte
}

// Snapshot captures the current live set. Later writes to the store do
// not affect the snapshot; the values are shared but never mutated
// (the store replaces, not edits, on overwrite).
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := make(map[string][]byte, len(s.index))
	for k, v := range s.index {
		m[k] = v
	}
	return &Snapshot{m: m}
}

// Get returns the value for key in the snapshot. The returned slice
// must not be mutated.
func (v *Snapshot) Get(key string) ([]byte, bool) {
	b, ok := v.m[key]
	return b, ok
}

// Len returns the snapshot's live-key count.
func (v *Snapshot) Len() int { return len(v.m) }

// Keys returns the snapshot's keys, sorted, optionally filtered to a
// prefix.
func (v *Snapshot) Keys(prefix string) []string {
	var out []string
	for k := range v.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ReadSnapshot replays the log at path into a Snapshot without taking
// ownership of the file: read-only descriptor, no torn-tail
// truncation, no magic stamping, no .compact cleanup. It is the
// cross-process merge primitive — the sweep merge reads every worker's
// log through it while the single-writer invariant stays with the
// worker that owns the log. A torn tail (a frame the owner may still
// be mid-append on) is simply ignored; mid-log damage is still
// ErrCorrupt. A missing file yields an empty snapshot.
func ReadSnapshot(path string, opts ...Options) (*Snapshot, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	fsys := o.FS
	if fsys == nil {
		fsys = iofault.OS{}
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &Snapshot{m: map[string][]byte{}}, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(f, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Empty or torn-at-creation log: no committed records.
			return &Snapshot{m: map[string][]byte{}}, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: %s is not a store log (bad magic)", ErrCorrupt, path)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	index := make(map[string][]byte)
	off := 0
	good := 0
	for off < len(data) {
		key, val, op, n, ok := parseFrame(data[off:])
		if !ok {
			break
		}
		switch op {
		case opPut:
			index[key] = val
		case opDel:
			delete(index, key)
		}
		off += n
		good = off
	}
	if good < len(data) {
		// Same tail/middle distinction as replay: a valid frame after
		// the damage means the middle of the log is corrupt.
		for probe := good + 1; probe < len(data); probe++ {
			if _, _, _, _, ok := parseFrame(data[probe:]); ok {
				return nil, fmt.Errorf("%w: bad frame at offset %d with valid data after it",
					ErrCorrupt, int64(good)+int64(len(magic)))
			}
		}
	}
	return &Snapshot{m: index}, nil
}

// Stats returns a consistent snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Records = len(s.index)
	st.LogBytes = s.size
	return st
}

// Compact rewrites the log to hold exactly the live set (dropping
// overwritten and deleted records), atomically replacing the old log.
// Used by the job journal, whose delete-heavy workload accretes dead
// frames; the result-store workload rarely needs it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	if s.sealed != nil {
		return fmt.Errorf("%w: %w", ErrSealed, s.sealed)
	}
	tmpPath := s.path + ".compact"
	tmp, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		s.fs.Remove(tmpPath)
	}
	ns := &Store{fs: s.fs, f: tmp, path: tmpPath, fsync: false}
	if _, err := tmp.Write([]byte(magic)); err != nil {
		cleanup()
		return fmt.Errorf("store: compact: %w", err)
	}
	ns.size = int64(len(magic))
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic log layout
	for _, k := range keys {
		if err := ns.appendFrame(opPut, k, s.index[k]); err != nil {
			cleanup()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := s.fs.Rename(tmpPath, s.path); err != nil {
		s.fs.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	old := s.f
	f, err := s.fs.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		// The compacted log is in place but we hold no descriptor to it:
		// appends can no longer reach the live file. Seal; Reopen heals.
		s.seal(fmt.Errorf("store: compact: reopening: %w", err))
		return fmt.Errorf("store: compact: reopening: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	old.Close()
	s.f = f
	s.size = ns.size
	return nil
}

// Close fsyncs and closes the log. Further writes fail; reads keep
// serving from the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.sealed != nil {
		// Nothing unsynced is trustworthy anyway; just release the fd.
		s.f.Close()
		return fmt.Errorf("%w: %w", ErrSealed, s.sealed)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.f.Close()
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }
