package sat

import (
	"math/rand"
	"testing"
)

// TestSolveAssumingBasics checks the assumption interface on small
// hand-built formulas: assumptions constrain without committing, and
// the solver recovers fully once they are dropped.
func TestSolveAssumingBasics(t *testing.T) {
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))

	if !s.SolveAssuming(MkLit(a, true)) { // assume NOT a => b => c
		t.Fatal("satisfiable under assumption")
	}
	if s.ValueOf(a) || !s.ValueOf(b) || !s.ValueOf(c) {
		t.Fatalf("model under assumption: a=%v b=%v c=%v", s.ValueOf(a), s.ValueOf(b), s.ValueOf(c))
	}
	// Contradictory assumptions fail without making the formula UNSAT.
	if s.SolveAssuming(MkLit(a, true), MkLit(b, true)) {
		t.Fatal("assumptions force a conflict")
	}
	if !s.Solve() {
		t.Fatal("formula must stay satisfiable after failed assumptions")
	}
	// Assumptions already implied by units behave like no-ops.
	s.AddClause(MkLit(a, false))
	if !s.SolveAssuming(MkLit(a, false), MkLit(c, false)) {
		t.Fatal("implied + free assumptions")
	}
	if !s.ValueOf(a) || !s.ValueOf(c) {
		t.Fatal("assumed literals must hold in the model")
	}
}

// TestAssumptionsVsClauseCopy cross-checks the assumption path against
// the clause-copy path on random 3-SAT: solving F under assumptions
// must agree with solving a fresh solver loaded with F plus the
// assumptions as unit clauses — for every verdict, across seeds, and
// interleaved with incremental clause additions.
func TestAssumptionsVsClauseCopy(t *testing.T) {
	const nv = 60
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		nc := 200 + r.Intn(120)
		clauses := make([][3]Lit, nc)
		for i := range clauses {
			for k := 0; k < 3; k++ {
				clauses[i][k] = MkLit(1+r.Intn(nv), r.Intn(2) == 1)
			}
		}
		load := func() *Solver {
			s := NewSolver()
			for i := 0; i < nv; i++ {
				s.NewVar()
			}
			for _, c := range clauses {
				s.AddClause(c[0], c[1], c[2])
			}
			return s
		}
		assume := make([]Lit, 1+r.Intn(4))
		for i := range assume {
			assume[i] = MkLit(1+r.Intn(nv), r.Intn(2) == 1)
		}

		s := load()
		gotAssume := s.SolveAssuming(assume...)

		copySolver := load()
		gotCopy := true
		for _, l := range assume {
			if !copySolver.AddClause(l) {
				gotCopy = false
			}
		}
		if gotCopy {
			gotCopy = copySolver.Solve()
		}
		if gotAssume != gotCopy {
			t.Fatalf("seed %d: assumption path %v, clause-copy path %v", seed, gotAssume, gotCopy)
		}
		// The assumption solver must still agree with an unconstrained
		// fresh solve (assumptions leave no residue).
		want := load().Solve()
		if got := s.Solve(); got != want {
			t.Fatalf("seed %d: after assumptions Solve()=%v, fresh solver %v", seed, got, want)
		}
	}
}

// TestPhaseSavingAndSeedVerdicts checks that decision-heuristic knobs
// (phase saving, seeded phases, dynamic restarts) never change
// verdicts, only search order.
func TestPhaseSavingAndSeedVerdicts(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		mk := func(phase bool, phaseSeed int64, dyn bool) *Solver {
			s := NewSolver()
			hardFormula(s, 80, 340, seed)
			s.SetPhaseSaving(phase)
			s.SetDynamicRestarts(dyn)
			if phaseSeed != 0 {
				s.SeedPhases(phaseSeed)
			}
			return s
		}
		want := mk(false, 0, false).Solve()
		for _, cfg := range []struct {
			phase bool
			pSeed int64
			dyn   bool
		}{{true, 0, false}, {false, 7, false}, {true, 7, true}, {false, 0, true}} {
			if got := mk(cfg.phase, cfg.pSeed, cfg.dyn).Solve(); got != want {
				t.Fatalf("seed %d cfg %+v: verdict %v, want %v", seed, cfg, got, want)
			}
		}
	}
}

// TestReduceDBKeepsVerdicts forces many learned-clause reductions and
// checks the solver still decides correctly: pigeonhole (UNSAT, heavy
// learning) and satisfiable random instances solved incrementally.
func TestReduceDBKeepsVerdicts(t *testing.T) {
	// Pigeonhole 8 into 7: enough conflicts to trigger reductions.
	s := NewSolver()
	const holes, pigeons = 7, 8
	var v [pigeons][holes]int
	for p := 0; p < pigeons; p++ {
		for h := 0; h < holes; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole must be UNSAT")
	}
	if s.Reductions == 0 {
		t.Fatalf("expected learned-clause reductions (conflicts=%d)", s.Conflicts)
	}
	if s.Deleted == 0 {
		t.Fatal("expected deleted learned clauses")
	}
}

// TestFixedValue checks root-level fixed-literal queries.
func TestFixedValue(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	if _, fixed := s.FixedValue(MkLit(a, false)); fixed {
		t.Fatal("unassigned var reported fixed")
	}
	s.AddClause(MkLit(a, false))                // a
	s.AddClause(MkLit(a, true), MkLit(b, true)) // a => NOT b
	if val, fixed := s.FixedValue(MkLit(a, false)); !fixed || !val {
		t.Fatalf("a: val=%v fixed=%v", val, fixed)
	}
	if val, fixed := s.FixedValue(MkLit(b, false)); !fixed || val {
		t.Fatalf("b: val=%v fixed=%v", val, fixed)
	}
	if val, fixed := s.FixedValue(MkLit(b, true)); !fixed || !val {
		t.Fatalf("NOT b: val=%v fixed=%v", val, fixed)
	}
}

// TestAddClausesFlat checks the bulk loader against AddClause on random
// batches, including root-simplification of already-fixed literals.
func TestAddClausesFlat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		const nv = 40
		var lits []Lit
		var ends []int32
		var asClauses [][]Lit
		for i := 0; i < 150; i++ {
			n := 1 + r.Intn(4)
			cl := make([]Lit, 0, n)
			used := map[int]bool{}
			for len(cl) < n {
				v := 1 + r.Intn(nv)
				if used[v] {
					continue // bulk loader requires duplicate-free clauses
				}
				used[v] = true
				cl = append(cl, MkLit(v, r.Intn(2) == 1))
			}
			lits = append(lits, cl...)
			ends = append(ends, int32(len(lits)))
			asClauses = append(asClauses, cl)
		}
		bulk := NewSolver()
		bulk.NewVars(nv)
		okBulk := bulk.AddClausesFlat(lits, ends)
		one := NewSolver()
		one.NewVars(nv)
		okOne := true
		for _, cl := range asClauses {
			if !one.AddClause(cl...) {
				okOne = false
				break
			}
		}
		if okBulk != okOne {
			t.Fatalf("seed %d: bulk load ok=%v, AddClause ok=%v", seed, okBulk, okOne)
		}
		if okBulk {
			if got, want := bulk.Solve(), one.Solve(); got != want {
				t.Fatalf("seed %d: bulk verdict %v, AddClause verdict %v", seed, got, want)
			}
		}
	}
}
