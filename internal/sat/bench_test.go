package sat

import (
	"math/rand"
	"testing"
)

// hardFormula builds a deterministic random 3-SAT instance near the
// satisfiability threshold (~4.2 clauses/var), which exercises
// propagation, conflict analysis, and restarts heavily.
func hardFormula(s *Solver, nv, nc int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	for i := 0; i < nc; i++ {
		var lits [3]Lit
		for k := range lits {
			lits[k] = MkLit(1+r.Intn(nv), r.Intn(2) == 1)
		}
		s.AddClause(lits[0], lits[1], lits[2])
	}
}

// BenchmarkSATPropagate measures the propagation-dominated hot path:
// solving threshold random 3-SAT plus a pigeonhole core (UNSAT, heavy
// clause learning).
func BenchmarkSATPropagate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		hardFormula(s, 120, 500, 12345)
		s.Solve()
		// Pigeonhole 7 into 6: UNSAT with many conflicts.
		ph := NewSolver()
		const holes, pigeons = 6, 7
		var v [pigeons][holes]int
		for p := 0; p < pigeons; p++ {
			for h := 0; h < holes; h++ {
				v[p][h] = ph.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = MkLit(v[p][h], false)
			}
			ph.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					ph.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
				}
			}
		}
		if ph.Solve() {
			b.Fatal("pigeonhole must be UNSAT")
		}
	}
}
