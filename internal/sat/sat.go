// Package sat implements a compact CDCL SAT solver (two-watched
// literals, first-UIP clause learning, VSIDS-style activities with an
// order heap, phase saving, Luby restarts, LBD-tagged learned-clause
// deletion) used by the security evaluation: the oracle-guided attack
// on eFPGA bitstreams and the equivalence checks of the redaction flow.
//
// The hot paths are slice-based: all clause literals live in one flat
// arena addressed by {offset,length} headers (no per-clause allocation,
// no pointer chasing), watch lists are slices indexed directly by
// literal value, and every watch entry carries a blocker literal so
// satisfied clauses are skipped without touching the clause memory at
// all. The solver is incremental in two ways: clauses can be added
// between Solve calls (individually or in bulk with AddClausesFlat),
// and SolveAssuming decides satisfiability under a set of assumption
// literals without committing them, so one solver instance can answer
// both the "is there a distinguishing input" and the "give me a
// witness key" queries of the attack loop.
package sat

import "sort"

// Lit is a literal: variable index v (1-based) encoded as 2v for the
// positive literal and 2v+1 for the negative literal.
type Lit int32

// MkLit builds a literal from a 1-based variable and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns the literal's 1-based variable.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// lbool is a three-valued assignment encoded so literal evaluation is
// branchless: value(l) = assign[var] XOR sign(l), with any result >= 2
// meaning unassigned (assign itself only ever holds 0, 1, or 2).
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

// cref references a clause header in the solver's clause list;
// crefUndef means none.
type cref int32

const crefUndef cref = -1

// clauseMeta is one clause header: its literals are
// clLits[off : off+n]. Learned clauses carry the LBD (literal block
// distance: the number of distinct decision levels in the clause when
// it was learned) that drives the deletion policy, and a used flag set
// whenever the clause serves as an antecedent in conflict analysis —
// recently useful clauses survive the next reduction regardless of
// their LBD.
type clauseMeta struct {
	off     int32
	n       int32
	lbd     int32
	learned bool
	used    bool
}

// watcher is one two-watched-literal entry: the clause to visit and a
// blocker literal (some other literal of the clause); when the blocker
// is already true the clause is satisfied and the entry is skipped
// without loading the clause. The clause reference is tagged in its
// low bit: binary clauses are flagged so propagation can act on the
// blocker (which is the clause's only other literal) without loading
// the clause memory at all.
type watcher struct {
	w       int32 // cref<<1 | isBinary
	blocker Lit
}

func mkWatch(c cref, bin bool) int32 {
	w := int32(c) << 1
	if bin {
		w |= 1
	}
	return w
}

// Learned-clause deletion policy: a reduction pass runs once the
// conflict count passes the next threshold (checked at restarts and at
// Solve entry, when the trail is at the root level), keeps glue
// clauses (LBD <= lbdGlue) and locked clauses (reasons of current
// root assignments), and deletes the worse half of the rest, ordered
// by LBD then size.
const (
	reduceFirst    = 2000 // conflicts before the first reduction
	reduceInc      = 300  // threshold growth per reduction
	lbdGlue        = 2    // clauses at or below this LBD are kept forever
	minLearnedKeep = 64   // never reduce tiny learned sets
)

// Solver is a CDCL SAT solver. The zero value is not usable; create
// with NewSolver.
type Solver struct {
	nVars     int
	clLits    []Lit        // flat literal arena, addressed by cls headers
	cls       []clauseMeta // all clauses, problem and learned
	nProblem  int          // count of non-learned clauses
	nLearned  int
	watches   [][]watcher // indexed by int(Lit)
	assign    []lbool     // per var (1-based)
	level     []int
	reason    []cref
	trail     []Lit
	trailLim  []int
	activity  []float64
	phase     []bool // saved polarity per var (true = assign true first)
	phaseSave bool   // update phase[] from assignments on backtrack
	varInc    float64
	qhead     int
	unsat     bool // sticky root-level UNSAT

	// VSIDS order heap: heap holds vars ordered by activity, hpos maps
	// var -> heap index (-1 when absent).
	heap []int32
	hpos []int32

	seen     []bool // analyze scratch, per var
	addTmp   []Lit  // AddClause scratch
	lbdMark  []int  // per-level stamp for LBD computation
	lbdGen   int    // current lbdMark generation
	redTmp   []cref // reduceDB candidate scratch
	remap    []cref // reduceDB compaction scratch
	lockTmp  []bool // reduceDB locked-clause scratch
	minKeep  []Lit  // analyze: pre-minimization clause copy
	minClear []Lit  // analyze: temporary seen marks from litRedundant
	anStack  []Lit  // litRedundant DFS stack

	nextReduce int // conflict count triggering the next reduction

	// Dynamic (Glucose-style) restarts: fire early when the short-term
	// LBD average degrades against the long-term one. Opt-in; the Luby
	// schedule remains the backstop either way.
	emaRestarts bool
	lbdEmaFast  float64
	lbdEmaSlow  float64

	// Stats.
	Conflicts    int
	Decisions    int
	Propagations int
	Reductions   int // learned-clause reduction passes
	Deleted      int // learned clauses deleted across all reductions
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		watches:    make([][]watcher, 2),
		varInc:     1.0,
		nextReduce: reduceFirst,
	}
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.lbdMark = append(s.lbdMark, 0)
	s.hpos = append(s.hpos, -1)
	s.watches = append(s.watches, nil, nil)
	if s.nVars == 1 {
		// index 0 pads the 1-based arrays
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, crefUndef)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
		s.lbdMark = append(s.lbdMark, 0)
		s.hpos = append(s.hpos, -1)
	}
	s.heapInsert(int32(s.nVars))
	return s.nVars
}

// NewVars allocates n consecutive variables and returns the index of
// the first; the block is contiguous, which lets callers address a
// family of related variables (e.g. the key bits of one miter copy) by
// a base offset — the mechanism behind CNF template stamping.
func (s *Solver) NewVars(n int) int {
	if n <= 0 {
		return s.nVars + 1
	}
	first := s.NewVar()
	for i := 1; i < n; i++ {
		s.NewVar()
	}
	return first
}

// SetPhaseSaving toggles phase saving: when enabled, a variable keeps
// the polarity it last held when it is decided again. Off by default —
// the default polarity-false decisions reproduce the historical search
// order exactly. The textbook advice is to enable it for long
// incremental runs, but measure first: the oracle-guided attack keeps
// it off, because its distinguishing-input queries want a *diverse*
// model per call and saved phases steer the search back into the
// just-refuted region (see the note in attack.RecoverBitstreamOpts).
func (s *Solver) SetPhaseSaving(on bool) { s.phaseSave = on }

// SetDynamicRestarts toggles LBD-driven dynamic restarts (in addition
// to the Luby backstop): the solver restarts early whenever the
// short-term average LBD of learned clauses degrades against the
// long-term average. Off by default (the Luby-only schedule reproduces
// the historical search); enabled by callers whose workload is
// dominated by long refutations, like the attack's final
// "no distinguishing input remains" proof.
func (s *Solver) SetDynamicRestarts(on bool) { s.emaRestarts = on }

// SeedPhases sets a deterministic pseudo-random saved phase for every
// currently allocated variable (splitmix64 over the seed). Callers use
// it to diversify the first models the solver produces — e.g. the
// distinguishing-input sequence of the oracle-guided attack — without
// giving up run-to-run determinism for a fixed seed.
func (s *Solver) SeedPhases(seed int64) {
	x := uint64(seed)
	for v := 1; v <= s.nVars; v++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		s.phase[v] = z&1 == 1
	}
}

// value evaluates a literal branchlessly: results 0/1 are true/false,
// anything >= lUndef is unassigned.
func (s *Solver) value(l Lit) lbool {
	return s.assign[l.Var()] ^ lbool(l&1)
}

// FixedValue reports whether the literal is permanently assigned at
// the root level, and its value there. Clause-building front ends use
// it to constant-fold literals the solver has already proven.
func (s *Solver) FixedValue(l Lit) (value, fixed bool) {
	v := l.Var()
	if v <= 0 || v > s.nVars || s.assign[v] == lUndef || s.level[v] != 0 {
		return false, false
	}
	return s.value(l) == lTrue, true
}

func (s *Solver) litsOf(c cref) []Lit {
	m := &s.cls[c]
	return s.clLits[m.off : m.off+m.n]
}

// AddClause adds a clause; it returns false if the formula became
// trivially unsatisfiable. Adding clauses between Solve calls is
// allowed (the solver backtracks to the root level first).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Simplify: drop duplicate/false literals, detect tautology. The
	// scratch is quadratic in the clause length, but clauses are short
	// and this avoids a map allocation per call.
	out := s.addTmp[:0]
	for _, l := range lits {
		dup := false
		for _, o := range out {
			if o == l.Neg() {
				s.addTmp = out
				return true // tautology
			}
			if o == l {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				s.addTmp = out
				return true // already satisfied at root
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		out = append(out, l)
	}
	s.addTmp = out
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if s.value(out[0]) == lFalse {
			s.unsat = true
			return false
		}
		if s.value(out[0]) >= lUndef {
			s.uncheckedEnqueue(out[0], crefUndef)
			if s.propagate() != crefUndef {
				s.unsat = true
				return false
			}
		}
		return true
	}
	s.addClauseLits(out, false, 0)
	return true
}

// AddClausesFlat bulk-loads a batch of clauses given as one flat
// literal buffer with clause end offsets: clause i is
// lits[ends[i-1]:ends[i]] (ends[ -1 ] = 0). It is the fast path behind
// CNF template stamping: the whole batch is appended to the arena with
// a single copy and one watch installation per clause, no per-clause
// allocation or re-simplification. The caller must supply clauses that
// are duplicate- and tautology-free; root-level assigned literals are
// handled here (satisfied clauses are dropped, false literals are
// stripped), so templates may reference variables the solver has since
// fixed. Returns false if the formula became unsatisfiable.
func (s *Solver) AddClausesFlat(lits []Lit, ends []int32) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	start := int32(0)
	for _, end := range ends {
		cl := lits[start:end]
		start = end
		// Strip root-false literals; drop root-satisfied clauses (after
		// cancelUntil(0) above, every assignment is a root assignment).
		base := int32(len(s.clLits))
		satisfied := false
		for _, l := range cl {
			switch s.value(l) {
			case lTrue:
				satisfied = true
			case lFalse:
				// dropped
			default:
				s.clLits = append(s.clLits, l)
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			s.clLits = s.clLits[:base]
			continue
		}
		n := int32(len(s.clLits)) - base
		switch n {
		case 0:
			s.clLits = s.clLits[:base]
			s.unsat = true
			return false
		case 1:
			l := s.clLits[base]
			s.clLits = s.clLits[:base]
			if s.value(l) == lFalse {
				s.unsat = true
				return false
			}
			if s.value(l) >= lUndef {
				s.uncheckedEnqueue(l, crefUndef)
				// Propagate immediately so later clauses in the batch see
				// the fixed value and simplify against it.
				if s.propagate() != crefUndef {
					s.unsat = true
					return false
				}
			}
		default:
			c := cref(len(s.cls))
			s.cls = append(s.cls, clauseMeta{off: base, n: n})
			s.nProblem++
			s.watch(c)
		}
	}
	return true
}

// addClauseLits copies lits into the arena and installs the watches.
func (s *Solver) addClauseLits(lits []Lit, learned bool, lbd int) cref {
	c := cref(len(s.cls))
	off := int32(len(s.clLits))
	s.clLits = append(s.clLits, lits...)
	s.cls = append(s.cls, clauseMeta{off: off, n: int32(len(lits)), learned: learned, lbd: int32(lbd)})
	if learned {
		s.nLearned++
	} else {
		s.nProblem++
	}
	s.watch(c)
	return c
}

func (s *Solver) watch(c cref) {
	lits := s.litsOf(c)
	bin := len(lits) == 2
	w0 := int(lits[0].Neg())
	w1 := int(lits[1].Neg())
	s.watches[w0] = append(s.watches[w0], watcher{w: mkWatch(c, bin), blocker: lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{w: mkWatch(c, bin), blocker: lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	s.assign[l.Var()] = lbool(l & 1)
	s.level[l.Var()] = len(s.trailLim)
	s.reason[l.Var()] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// reference or crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker check: clause satisfied without loading it.
			bv := s.value(w.blocker)
			if bv == lTrue {
				ws[j] = w
				j++
				continue
			}
			if w.w&1 == 1 {
				// Binary clause: the blocker is the only other literal, so
				// the outcome is decided without touching clause memory.
				ws[j] = w
				j++
				if bv == lFalse {
					j += copy(ws[j:], ws[i+1:])
					s.watches[p] = ws[:j]
					s.qhead = len(s.trail)
					return cref(w.w >> 1)
				}
				s.uncheckedEnqueue(w.blocker, cref(w.w>>1))
				continue
			}
			c := cref(w.w >> 1)
			lits := s.litsOf(c)
			// Ensure the false literal is lits[1].
			if lits[0] == p.Neg() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{w: w.w, blocker: first}
				j++
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nw := int(lits[1].Neg())
					s.watches[nw] = append(s.watches[nw], watcher{w: w.w, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = watcher{w: w.w, blocker: first}
			j++
			if s.value(first) == lFalse {
				// Conflict: keep the remaining watchers and bail.
				j += copy(ws[j:], ws[i+1:])
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return crefUndef
}

// --- VSIDS order heap ---

// heapLess orders the decision heap: higher activity first, lower
// variable index among equals (the deterministic tie-break the old
// linear-scan decide used).
func (s *Solver) heapLess(a, b int32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *Solver) heapSwap(i, j int) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	s.hpos[h[i]] = int32(i)
	s.hpos[h[j]] = int32(j)
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			break
		}
		s.heapSwap(i, p)
		i = p
	}
}

func (s *Solver) heapDown(i int) {
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], s.heap[i]) {
			return
		}
		s.heapSwap(i, c)
		i = c
	}
}

func (s *Solver) heapInsert(v int32) {
	if s.hpos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.hpos[v] = int32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapPop() int32 {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.hpos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.hpos[v] >= 0 {
		s.heapUp(int(s.hpos[v]))
	}
}

// analyze produces a first-UIP learned clause, its backtrack level,
// and its LBD (number of distinct decision levels).
func (s *Solver) analyze(confl cref) ([]Lit, int, int) {
	seen := s.seen
	var learnt []Lit
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	cur := confl
	for {
		if m := &s.cls[cur]; m.learned {
			// Antecedent use protects the clause at the next reduction.
			m.used = true
		}
		for _, q := range s.litsOf(cur) {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= len(s.trailLim) {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		cur = s.reason[p.Var()]
	}
	learnt = append([]Lit{p.Neg()}, learnt...)
	// Conflict-clause minimization (recursive, MiniSat-style): drop any
	// literal whose reason chain is already implied by the rest of the
	// clause. The seen marks from the collection loop above double as
	// the "in clause" set; temporary marks made while chasing reason
	// chains are recorded in minClear and removed below.
	s.minKeep = append(s.minKeep[:0], learnt[1:]...)
	abstract := uint32(0)
	for _, l := range learnt[1:] {
		abstract |= 1 << (uint(s.level[l.Var()]) & 31)
	}
	j := 1
	for _, l := range learnt[1:] {
		if s.reason[l.Var()] == crefUndef || !s.litRedundant(l, abstract) {
			learnt[j] = l
			j++
		}
	}
	learnt = learnt[:j]
	// Clear every mark so the scratch is clean for next time.
	for _, l := range s.minKeep {
		seen[l.Var()] = false
	}
	for _, l := range s.minClear {
		seen[l.Var()] = false
	}
	s.minClear = s.minClear[:0]
	// Backtrack level: second-highest level in the clause. LBD: number
	// of distinct levels across the clause (asserting literal included).
	back := 0
	s.lbdGen++
	lbd := 0
	// Distinct-level count via the per-level stamp array (lbdMark is
	// indexed by decision level here; levels are bounded by nVars).
	for _, l := range learnt {
		lv := s.level[l.Var()]
		if lv >= len(s.lbdMark) {
			continue // defensive; levels are bounded by vars
		}
		if s.lbdMark[lv] != s.lbdGen {
			s.lbdMark[lv] = s.lbdGen
			lbd++
		}
	}
	for _, l := range learnt[1:] {
		if s.level[l.Var()] > back {
			back = s.level[l.Var()]
		}
	}
	return learnt, back, lbd
}

// litRedundant reports whether p is implied by the other literals of
// the clause under construction (whose variables are marked in seen):
// it chases p's reason chain and succeeds if every path terminates in
// a seen or root-level literal. Failed probes restore the temporary
// marks they made; successful ones keep them (in minClear) so later
// probes share the work. abstract is a Bloom-style signature of the
// clause's decision levels — a chain literal outside those levels can
// never be redundant, which prunes most failing probes in O(1).
func (s *Solver) litRedundant(p Lit, abstract uint32) bool {
	s.anStack = append(s.anStack[:0], p)
	top := len(s.minClear)
	for len(s.anStack) > 0 {
		q := s.anStack[len(s.anStack)-1]
		s.anStack = s.anStack[:len(s.anStack)-1]
		for _, l := range s.litsOf(s.reason[q.Var()]) {
			v := l.Var()
			if v == q.Var() || s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == crefUndef || (uint32(1)<<(uint(s.level[v])&31))&abstract == 0 {
				for i := top; i < len(s.minClear); i++ {
					s.seen[s.minClear[i].Var()] = false
				}
				s.minClear = s.minClear[:top]
				return false
			}
			s.seen[v] = true
			s.anStack = append(s.anStack, l)
			s.minClear = append(s.minClear, l)
		}
	}
	return true
}

func (s *Solver) cancelUntil(level int) {
	if len(s.trailLim) <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		if s.phaseSave {
			s.phase[v] = s.assign[v] == lTrue
		}
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
		s.heapInsert(int32(v))
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) decide() Lit {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == lUndef {
			return MkLit(int(v), !s.phase[v])
		}
	}
	return -1
}

func luby(i int) int {
	// Luby sequence: 1 1 2 1 1 2 4 ...
	for k := 1; ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// reduceDB deletes the less useful half of the learned clauses (kept:
// glue clauses with LBD <= lbdGlue, clauses locked as reasons of the
// current root assignment, and the better-LBD half of the rest) and
// compacts the clause arena in place, remapping clause references and
// rebuilding the watch lists. It must be called with the trail at the
// root level.
func (s *Solver) reduceDB() {
	if s.nLearned <= minLearnedKeep {
		return
	}
	// Locked clauses: reasons of current (root) assignments.
	if cap(s.lockTmp) < len(s.cls) {
		s.lockTmp = make([]bool, len(s.cls))
	}
	locked := s.lockTmp[:len(s.cls)]
	for i := range locked {
		locked[i] = false
	}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != crefUndef {
			locked[r] = true
		}
	}
	// Candidate learned clauses, by (LBD, size) descending badness.
	// Clauses used as antecedents since the last reduction are spared
	// this round (and their protection cleared for the next one).
	cand := s.redTmp[:0]
	for c := range s.cls {
		m := &s.cls[c]
		if !m.learned {
			continue
		}
		if m.used {
			m.used = false
			continue
		}
		if !locked[c] && m.lbd > lbdGlue {
			cand = append(cand, cref(c))
		}
	}
	s.redTmp = cand
	// Partial selection: delete the worse half. Simple insertion-free
	// approach: sort by badness descending.
	sortCrefsByBadness(cand, s.cls)
	del := len(cand) / 2
	if del == 0 {
		return
	}
	if cap(s.remap) < len(s.cls) {
		s.remap = make([]cref, len(s.cls))
	}
	remap := s.remap[:len(s.cls)]
	for i := range remap {
		remap[i] = crefUndef
	}
	for _, c := range cand[:del] {
		remap[c] = -2 // marked for deletion
	}
	// Compact arena and headers in place.
	wLit := int32(0)
	wCls := 0
	for c := range s.cls {
		if remap[c] == -2 {
			continue
		}
		m := s.cls[c]
		copy(s.clLits[wLit:wLit+m.n], s.clLits[m.off:m.off+m.n])
		m.off = wLit
		wLit += m.n
		s.cls[wCls] = m
		remap[c] = cref(wCls)
		wCls++
	}
	s.clLits = s.clLits[:wLit]
	s.cls = s.cls[:wCls]
	s.Deleted += del
	s.nLearned -= del
	s.Reductions++
	// Remap reasons of the root assignment.
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != crefUndef {
			s.reason[l.Var()] = remap[r]
		}
	}
	// Rebuild watch lists: pick two non-root-false literals per clause
	// so the watch invariant holds under the current root assignment.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for c := range s.cls {
		lits := s.litsOf(cref(c))
		w := 0
		for i := 0; i < len(lits) && w < 2; i++ {
			if s.value(lits[i]) != lFalse {
				lits[i], lits[w] = lits[w], lits[i]
				w++
			}
		}
		// w < 2 means the clause is root-satisfied (a root-true literal
		// sits at position 0 after the partition scan above): watches on
		// root-false literals are never visited again, which is safe for
		// a permanently satisfied clause.
		s.watch(cref(c))
	}
}

// sortCrefsByBadness orders candidates worst-first: higher LBD first,
// longer clause first among equals, so the deletion pass can drop a
// prefix.
func sortCrefsByBadness(cand []cref, cls []clauseMeta) {
	sort.Slice(cand, func(i, j int) bool {
		ma, mb := &cls[cand[i]], &cls[cand[j]]
		if ma.lbd != mb.lbd {
			return ma.lbd > mb.lbd
		}
		return ma.n > mb.n
	})
}

// Solve decides satisfiability of the current clause set. On SAT, the
// model can be read with ValueOf. The solver is incremental: more
// clauses may be added afterwards and Solve called again.
func (s *Solver) Solve() bool { return s.SolveAssuming() }

// SolveAssuming decides satisfiability under the given assumption
// literals. The assumptions are not added as clauses: they hold for
// this call only, and learned clauses remain valid for later calls
// with different (or no) assumptions. It returns false when the
// formula is unsatisfiable under the assumptions — which includes the
// formula being unsatisfiable outright.
func (s *Solver) SolveAssuming(assumps ...Lit) bool {
	res, _ := s.SolveBudgeted(0, assumps...)
	return res
}

// SolveBudgeted is SolveAssuming with a conflict budget: if the search
// exceeds maxConflicts additional conflicts the solver backtracks to
// the root and reports decided=false (the formula keeps all learned
// clauses, so a later call resumes the work). maxConflicts <= 0 means
// unlimited. Security sweeps use it to bound the cost of attacking a
// fabric that is simply too strong to crack.
func (s *Solver) SolveBudgeted(maxConflicts int, assumps ...Lit) (result, decided bool) {
	budget := -1
	if maxConflicts > 0 {
		budget = s.Conflicts + maxConflicts
	}
	if s.unsat {
		return false, true
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		s.unsat = true
		return false, true
	}
	if s.Conflicts >= s.nextReduce {
		s.reduceDB()
		s.nextReduce = s.Conflicts + reduceFirst + reduceInc*s.Reductions
	}
	restart := 1
	conflictBudget := 64 * luby(restart)
	conflicts := 0
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.Conflicts++
			conflicts++
			if len(s.trailLim) == 0 {
				s.unsat = true
				return false, true
			}
			if budget >= 0 && s.Conflicts >= budget {
				s.cancelUntil(0)
				return false, false
			}
			learnt, back, lbd := s.analyze(confl)
			// LBD exponential moving averages drive dynamic restarts: a
			// burst of high-LBD (poor) clauses relative to the long-term
			// average means the search is stuck in an unproductive region.
			s.lbdEmaFast += (float64(lbd) - s.lbdEmaFast) / 32
			s.lbdEmaSlow += (float64(lbd) - s.lbdEmaSlow) / 8192
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if s.value(learnt[0]) == lFalse {
					s.unsat = true
					return false, true
				}
				if s.value(learnt[0]) >= lUndef {
					s.uncheckedEnqueue(learnt[0], crefUndef)
					if s.propagate() != crefUndef {
						s.unsat = true
						return false, true
					}
				}
				continue
			}
			c := s.addClauseLits(learnt, true, lbd)
			if s.value(learnt[0]) >= lUndef {
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc *= 1.05
			shouldRestart := conflicts > conflictBudget
			if s.emaRestarts && !shouldRestart {
				shouldRestart = conflicts >= 50 && s.lbdEmaFast > 1.25*s.lbdEmaSlow
			}
			if shouldRestart {
				restart++
				conflictBudget = 64 * luby(restart)
				conflicts = 0
				s.cancelUntil(0)
				if s.Conflicts >= s.nextReduce {
					s.reduceDB()
					s.nextReduce = s.Conflicts + reduceFirst + reduceInc*s.Reductions
				}
			}
			continue
		}
		// Establish pending assumptions before free decisions.
		l := Lit(-1)
		for len(s.trailLim) < len(assumps) {
			p := assumps[len(s.trailLim)]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy decision level so the
				// level-indexed assumption bookkeeping stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// The formula forces the negation of an assumption.
				return false, true
			}
			l = p
			break
		}
		if l == -1 {
			l = s.decide()
			if l == -1 {
				return true, true // all assigned
			}
			s.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, crefUndef)
	}
}

// ValueOf returns the model value of a 1-based variable after a
// successful Solve.
func (s *Solver) ValueOf(v int) bool { return s.assign[v] == lTrue }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return s.nProblem }

// NumLearned returns the number of currently retained learned clauses.
func (s *Solver) NumLearned() int { return s.nLearned }
