// Package sat implements a compact CDCL SAT solver (two-watched
// literals, first-UIP clause learning, VSIDS-style activities, Luby
// restarts) used by the security evaluation: the oracle-guided attack
// on eFPGA bitstreams and the equivalence checks of the redaction flow.
//
// The hot paths are slice-based: clauses live in an arena addressed by
// integer references (no pointer chasing), watch lists are slices
// indexed directly by literal value, and every watch entry carries a
// blocker literal so satisfied clauses are skipped without touching the
// clause memory at all.
package sat

// Lit is a literal: variable index v (1-based) encoded as 2v for the
// positive literal and 2v+1 for the negative literal.
type Lit int32

// MkLit builds a literal from a 1-based variable and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns the literal's 1-based variable.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// cref references a clause in the solver's arena; crefUndef means none.
type cref int32

const crefUndef cref = -1

type clause struct {
	lits    []Lit
	learned bool
}

// watcher is one two-watched-literal entry: the clause to visit and a
// blocker literal (some other literal of the clause); when the blocker
// is already true the clause is satisfied and the entry is skipped
// without loading the clause.
type watcher struct {
	c       cref
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// with NewSolver.
type Solver struct {
	nVars    int
	arena    []clause    // all clauses, problem and learned
	nProblem int         // count of non-learned clauses
	watches  [][]watcher // indexed by int(Lit)
	assign   []lbool     // per var (1-based)
	level    []int
	reason   []cref
	trail    []Lit
	trailLim []int
	activity []float64
	varInc   float64
	qhead    int
	unsat    bool // sticky root-level UNSAT

	seen   []bool // analyze scratch, per var
	addTmp []Lit  // AddClause scratch
	// Stats.
	Conflicts    int
	Decisions    int
	Propagations int
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		watches: make([][]watcher, 2),
		varInc:  1.0,
	}
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	if s.nVars == 1 {
		// index 0 pads the 1-based arrays
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, crefUndef)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
	}
	return s.nVars
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause; it returns false if the formula became
// trivially unsatisfiable. Adding clauses between Solve calls is
// allowed (the solver backtracks to the root level first).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Simplify: drop duplicate/false literals, detect tautology. The
	// scratch is quadratic in the clause length, but clauses are short
	// and this avoids a map allocation per call.
	out := s.addTmp[:0]
	for _, l := range lits {
		dup := false
		for _, o := range out {
			if o == l.Neg() {
				s.addTmp = out
				return true // tautology
			}
			if o == l {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				s.addTmp = out
				return true // already satisfied at root
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		out = append(out, l)
	}
	s.addTmp = out
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if s.value(out[0]) == lFalse {
			s.unsat = true
			return false
		}
		if s.value(out[0]) == lUndef {
			s.uncheckedEnqueue(out[0], crefUndef)
			if s.propagate() != crefUndef {
				s.unsat = true
				return false
			}
		}
		return true
	}
	s.addClauseLits(out, false)
	return true
}

// addClauseLits copies lits into the arena and installs the watches.
func (s *Solver) addClauseLits(lits []Lit, learned bool) cref {
	c := cref(len(s.arena))
	s.arena = append(s.arena, clause{lits: append([]Lit(nil), lits...), learned: learned})
	if !learned {
		s.nProblem++
	}
	s.watch(c)
	return c
}

func (s *Solver) watch(c cref) {
	lits := s.arena[c].lits
	w0 := int(lits[0].Neg())
	w1 := int(lits[1].Neg())
	s.watches[w0] = append(s.watches[w0], watcher{c: c, blocker: lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c: c, blocker: lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	if l.Sign() {
		s.assign[l.Var()] = lFalse
	} else {
		s.assign[l.Var()] = lTrue
	}
	s.level[l.Var()] = len(s.trailLim)
	s.reason[l.Var()] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// reference or crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker check: clause satisfied without loading it.
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			lits := s.arena[w.c].lits
			// Ensure the false literal is lits[1].
			if lits[0] == p.Neg() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{c: w.c, blocker: first}
				j++
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nw := int(lits[1].Neg())
					s.watches[nw] = append(s.watches[nw], watcher{c: w.c, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = watcher{c: w.c, blocker: first}
			j++
			if s.value(first) == lFalse {
				// Conflict: keep the remaining watchers and bail.
				j += copy(ws[j:], ws[i+1:])
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return w.c
			}
			s.uncheckedEnqueue(first, w.c)
		}
		s.watches[p] = ws[:j]
	}
	return crefUndef
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze produces a first-UIP learned clause and a backtrack level.
func (s *Solver) analyze(confl cref) ([]Lit, int) {
	seen := s.seen
	var learnt []Lit
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	cur := confl
	for {
		for _, q := range s.arena[cur].lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= len(s.trailLim) {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		cur = s.reason[p.Var()]
	}
	learnt = append([]Lit{p.Neg()}, learnt...)
	// Clear the remaining marks so the scratch is clean for next time.
	for _, l := range learnt[1:] {
		seen[l.Var()] = false
	}
	// Backtrack level: second-highest level in the clause.
	back := 0
	for _, l := range learnt[1:] {
		if s.level[l.Var()] > back {
			back = s.level[l.Var()]
		}
	}
	return learnt, back
}

func (s *Solver) cancelUntil(level int) {
	if len(s.trailLim) <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) decide() Lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best == 0 {
		return -1
	}
	return MkLit(best, true) // negative polarity first
}

func luby(i int) int {
	// Luby sequence: 1 1 2 1 1 2 4 ...
	for k := 1; ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve decides satisfiability of the current clause set. On SAT, the
// model can be read with ValueOf. The solver is incremental: more
// clauses may be added afterwards and Solve called again.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		return false
	}
	restart := 1
	conflictBudget := 64 * luby(restart)
	conflicts := 0
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.Conflicts++
			conflicts++
			if len(s.trailLim) == 0 {
				return false
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if s.value(learnt[0]) == lFalse {
					return false
				}
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], crefUndef)
					if s.propagate() != crefUndef {
						return false
					}
				}
				continue
			}
			c := s.addClauseLits(learnt, true)
			if s.value(learnt[0]) == lUndef {
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc *= 1.05
			if conflicts > conflictBudget {
				restart++
				conflictBudget = 64 * luby(restart)
				conflicts = 0
				s.cancelUntil(0)
			}
			continue
		}
		l := s.decide()
		if l == -1 {
			return true // all assigned
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, crefUndef)
	}
}

// ValueOf returns the model value of a 1-based variable after a
// successful Solve.
func (s *Solver) ValueOf(v int) bool { return s.assign[v] == lTrue }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return s.nProblem }
