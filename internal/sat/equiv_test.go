package sat

import (
	"math/rand"
	"testing"
)

// refDPLL is an independent reference solver (plain DPLL with unit
// propagation, no learning, no heuristics) used to cross-check the
// CDCL solver's verdicts on formulas too large for brute-force
// enumeration. Clauses are slices of signed 1-based literals.
type refDPLL struct {
	clauses [][]int
	assign  []int8 // 0 unknown, 1 true, -1 false; per var (1-based)
}

func (d *refDPLL) litVal(l int) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := d.assign[v]
	if a == 0 {
		return 0
	}
	if l < 0 {
		return -a
	}
	return a
}

func (d *refDPLL) solve() bool {
	// Unit propagation to fixpoint.
	type trailMark struct{ v int }
	var trail []trailMark
	set := func(l int) {
		v := l
		val := int8(1)
		if v < 0 {
			v, val = -v, -1
		}
		d.assign[v] = val
		trail = append(trail, trailMark{v})
	}
	undo := func(n int) {
		for len(trail) > n {
			d.assign[trail[len(trail)-1].v] = 0
			trail = trail[:len(trail)-1]
		}
	}
	for {
		unitFound := false
		for _, c := range d.clauses {
			sat := false
			unassigned := 0
			last := 0
			for _, l := range c {
				switch d.litVal(l) {
				case 1:
					sat = true
				case 0:
					unassigned++
					last = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				undo(0)
				return false
			}
			if unassigned == 1 {
				set(last)
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}
	// Pick the first unassigned variable and branch.
	branch := 0
	for v := 1; v < len(d.assign); v++ {
		if d.assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true // complete assignment, all clauses satisfied
	}
	mark := len(trail)
	for _, phase := range []int{branch, -branch} {
		set(phase)
		if d.solve() {
			return true
		}
		undo(mark)
	}
	undo(0)
	return false
}

// TestAgainstReferenceDPLL cross-checks the slice-based CDCL solver
// against the independent DPLL reference on random 3-SAT formulas
// around the satisfiability threshold — large enough that watch-list
// bookkeeping, learning, and restarts are all exercised.
func TestAgainstReferenceDPLL(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		nv := 8 + r.Intn(18)
		nc := int(float64(nv)*3.5) + r.Intn(nv)
		ref := &refDPLL{assign: make([]int8, nv+1)}
		s := NewSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		ok := true
		for i := 0; i < nc; i++ {
			var lits []Lit
			var refLits []int
			for k := 0; k < 3; k++ {
				v := 1 + r.Intn(nv)
				neg := r.Intn(2) == 1
				lits = append(lits, MkLit(v, neg))
				if neg {
					refLits = append(refLits, -v)
				} else {
					refLits = append(refLits, v)
				}
			}
			ref.clauses = append(ref.clauses, refLits)
			if !s.AddClause(lits...) {
				ok = false
			}
		}
		got := ok && s.Solve()
		want := ref.solve()
		if got != want {
			t.Fatalf("seed %d (%d vars, %d clauses): cdcl=%v reference=%v", seed, nv, nc, got, want)
		}
		if got {
			// The model must satisfy every clause.
			for ci, c := range ref.clauses {
				sat := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					if val := s.ValueOf(v); (l > 0 && val) || (l < 0 && !val) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("seed %d: model violates clause %d", seed, ci)
				}
			}
		}
	}
}
