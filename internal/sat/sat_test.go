package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true))
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	if s.ValueOf(a) {
		t.Error("a must be false")
	}
	if !s.ValueOf(b) {
		t.Error("b must be true")
	}
}

func TestUnsatPair(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok && s.Solve() {
		t.Fatal("should be UNSAT")
	}
}

func TestPigeonhole3(t *testing.T) {
	// 4 pigeons, 3 holes: UNSAT.
	s := NewSolver()
	p := make([][]int, 4)
	for i := range p {
		p[i] = make([]int, 3)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < 4; i++ {
		s.AddClause(MkLit(p[i][0], false), MkLit(p[i][1], false), MkLit(p[i][2], false))
	}
	for j := 0; j < 3; j++ {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				s.AddClause(MkLit(p[a][j], true), MkLit(p[b][j], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole must be UNSAT")
	}
}

func TestIncremental(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if !s.Solve() {
		t.Fatal("SAT expected")
	}
	s.AddClause(MkLit(a, true))
	if !s.Solve() {
		t.Fatal("still SAT")
	}
	if !s.ValueOf(b) {
		t.Error("b must be true now")
	}
	s.AddClause(MkLit(b, true))
	if s.Solve() {
		t.Fatal("UNSAT expected after forcing both false")
	}
}

// TestQuickRandom3SAT cross-checks the solver against brute force on
// small random formulas.
func TestQuickRandom3SAT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 3 + r.Intn(8)
		nc := 3 + r.Intn(25)
		type cl [3]int // signed literals, 1-based vars
		var clauses []cl
		for i := 0; i < nc; i++ {
			var c cl
			for k := 0; k < 3; k++ {
				v := 1 + r.Intn(nv)
				if r.Intn(2) == 1 {
					v = -v
				}
				c[k] = v
			}
			clauses = append(clauses, c)
		}
		// Brute force.
		bruteSAT := false
		for m := 0; m < 1<<uint(nv); m++ {
			all := true
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := (m>>(uint(v)-1))&1 == 1
					if (l > 0 && val) || (l < 0 && !val) {
						sat = true
						break
					}
				}
				if !sat {
					all = false
					break
				}
			}
			if all {
				bruteSAT = true
				break
			}
		}
		// Solver.
		s := NewSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			var lits []Lit
			for _, l := range c {
				if l > 0 {
					lits = append(lits, MkLit(l, false))
				} else {
					lits = append(lits, MkLit(-l, true))
				}
			}
			if !s.AddClause(lits...) {
				ok = false
			}
		}
		got := ok && s.Solve()
		if got != bruteSAT {
			t.Logf("seed %d: solver=%v brute=%v (%d vars, %d clauses)", seed, got, bruteSAT, nv, nc)
			return false
		}
		// If SAT, the model must actually satisfy all clauses.
		if got {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := s.ValueOf(v)
					if (l > 0 && val) || (l < 0 && !val) {
						sat = true
						break
					}
				}
				if !sat {
					t.Logf("seed %d: model does not satisfy clause %v", seed, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
