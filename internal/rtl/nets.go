package rtl

import "alice/internal/verilog"

// ResolveNets computes the net table of a module under an explicit
// parameter environment (used when an instance overrides parameters and
// net widths depend on them). Ports are included.
func ResolveNets(m *ModuleInfo, env verilog.Env) (map[string]*NetInfo, error) {
	nets := make(map[string]*NetInfo)
	ports, err := resolvePorts(m.AST, env)
	if err != nil {
		return nil, err
	}
	for _, p := range ports {
		kind := verilog.Wire
		if portIsReg(m.AST, p.Name) {
			kind = verilog.Reg
		}
		nets[p.Name] = &NetInfo{Name: p.Name, Kind: kind, Width: p.Width, MSB: p.MSB, LSB: p.LSB}
	}
	for _, it := range m.AST.Items {
		decl, ok := it.(*verilog.NetDecl)
		if !ok {
			continue
		}
		w, err := verilog.RangeWidth(decl.Range, env)
		if err != nil {
			return nil, errf(m.Name, "net declaration: %v", err)
		}
		msb, lsb, err := verilog.RangeBounds(decl.Range, env)
		if err != nil {
			return nil, errf(m.Name, "net declaration: %v", err)
		}
		for _, dn := range decl.Names {
			ni := &NetInfo{Name: dn.Name, Kind: decl.Kind, Width: w, MSB: msb, LSB: lsb}
			if dn.Array != nil {
				lo, hi, err := verilog.RangeBounds(dn.Array, env)
				if err != nil {
					return nil, errf(m.Name, "memory %s: %v", dn.Name, err)
				}
				if lo > hi {
					lo, hi = hi, lo
				}
				ni.Depth = int(hi-lo) + 1
				ni.Base = lo
			}
			if old, exists := nets[dn.Name]; exists {
				if old.Width != w {
					return nil, errf(m.Name, "net %s redeclared with different width", dn.Name)
				}
				if decl.Kind == verilog.Reg {
					old.Kind = verilog.Reg
				}
				continue
			}
			nets[dn.Name] = ni
		}
	}
	return nets, nil
}
