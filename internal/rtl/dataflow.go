package rtl

import (
	"context"
	"fmt"
	"sort"

	"alice/internal/verilog"
)

// Dataflow is a whole-design signal dependency graph at net granularity,
// built over the elaborated instance tree. It answers the question at the
// heart of ALICE's module filtering: which instances (and therefore
// modules) affect a given top-level output?
type Dataflow struct {
	design *Design
	ids    map[string]int // "path/net" -> node id
	owner  []*InstanceNode
	deps   [][]int32 // deps[n] = nodes n directly depends on
}

// NewDataflow builds the dependency graph for an elaborated design,
// checking ctx between instances so huge hierarchies stay cancellable.
func NewDataflow(ctx context.Context, d *Design) (*Dataflow, error) {
	df := &Dataflow{design: d, ids: make(map[string]int)}
	for _, inst := range d.AllInstances {
		for name := range inst.Module.Nets {
			df.addNode(inst, name)
		}
	}
	for _, inst := range d.AllInstances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := df.addModuleEdges(inst); err != nil {
			return nil, err
		}
		if err := df.addBoundaryEdges(inst); err != nil {
			return nil, err
		}
	}
	return df, nil
}

func (df *Dataflow) addNode(inst *InstanceNode, net string) int {
	key := inst.Path + "/" + net
	if id, ok := df.ids[key]; ok {
		return id
	}
	id := len(df.owner)
	df.ids[key] = id
	df.owner = append(df.owner, inst)
	df.deps = append(df.deps, nil)
	return id
}

func (df *Dataflow) node(inst *InstanceNode, net string) (int, bool) {
	id, ok := df.ids[inst.Path+"/"+net]
	return id, ok
}

func (df *Dataflow) addDep(target, source int) {
	df.deps[target] = append(df.deps[target], int32(source))
}

// addModuleEdges adds intra-module dependencies of one instance.
func (df *Dataflow) addModuleEdges(inst *InstanceNode) error {
	for _, it := range inst.Module.AST.Items {
		switch x := it.(type) {
		case *verilog.ContAssign:
			targets, extraSrc := lvalueNets(x.LHS)
			srcs := append(ExprNets(x.RHS), extraSrc...)
			df.connect(inst, targets, srcs)
		case *verilog.Always:
			if x.Initial {
				continue
			}
			df.walkStmt(inst, x.Body, nil)
		}
	}
	return nil
}

// walkStmt adds edges for procedural assignments; cond is the stack of
// control nets governing the statement.
func (df *Dataflow) walkStmt(inst *InstanceNode, s verilog.Stmt, cond []string) {
	switch x := s.(type) {
	case *verilog.Block:
		for _, st := range x.Stmts {
			df.walkStmt(inst, st, cond)
		}
	case *verilog.If:
		c := append(cond, ExprNets(x.Cond)...)
		df.walkStmt(inst, x.Then, c)
		if x.Else != nil {
			df.walkStmt(inst, x.Else, c)
		}
	case *verilog.Case:
		c := append(cond, ExprNets(x.Subject)...)
		for _, item := range x.Items {
			ci := c
			for _, e := range item.Exprs {
				ci = append(ci, ExprNets(e)...)
			}
			df.walkStmt(inst, item.Body, ci)
		}
	case *verilog.For:
		c := cond
		if x.Cond != nil {
			c = append(c, ExprNets(x.Cond)...)
		}
		df.walkStmt(inst, x.Body, c)
	case *verilog.Assign:
		targets, extraSrc := lvalueNets(x.LHS)
		srcs := append(ExprNets(x.RHS), extraSrc...)
		srcs = append(srcs, cond...)
		df.connect(inst, targets, srcs)
	}
}

func (df *Dataflow) connect(inst *InstanceNode, targets, srcs []string) {
	for _, t := range targets {
		tid, ok := df.node(inst, t)
		if !ok {
			continue // undeclared (e.g. genvar-like), ignore
		}
		for _, s := range srcs {
			if sid, ok := df.node(inst, s); ok {
				df.addDep(tid, sid)
			}
		}
	}
}

// addBoundaryEdges wires instance ports to the parent's connection
// expressions.
func (df *Dataflow) addBoundaryEdges(parent *InstanceNode) error {
	childIdx := 0
	for _, it := range parent.Module.AST.Items {
		in, ok := it.(*verilog.Instance)
		if !ok {
			continue
		}
		if childIdx >= len(parent.Children) {
			return fmt.Errorf("rtl: instance tree out of sync in %s", parent.Path)
		}
		child := parent.Children[childIdx]
		childIdx++
		for i, conn := range in.Conns {
			if conn.Expr == nil {
				continue
			}
			var port *PortInfo
			if conn.Port != "" {
				port = portInfoByName(child.Ports, conn.Port)
			} else if i < len(child.Ports) {
				port = &child.Ports[i]
			}
			if port == nil {
				continue
			}
			pid, ok := df.node(child, port.Name)
			if !ok {
				continue
			}
			switch port.Dir {
			case verilog.Input:
				for _, s := range ExprNets(conn.Expr) {
					if sid, ok := df.node(parent, s); ok {
						df.addDep(pid, sid)
					}
				}
			case verilog.Output:
				targets, extra := lvalueNets(conn.Expr)
				for _, t := range targets {
					if tid, ok := df.node(parent, t); ok {
						df.addDep(tid, pid)
					}
				}
				for _, s := range extra {
					if sid, ok := df.node(parent, s); ok {
						df.addDep(pid, sid)
					}
				}
			case verilog.Inout:
				for _, s := range ExprNets(conn.Expr) {
					if sid, ok := df.node(parent, s); ok {
						df.addDep(pid, sid)
						df.addDep(sid, pid)
					}
				}
			}
		}
	}
	return nil
}

func portInfoByName(ports []PortInfo, name string) *PortInfo {
	for i := range ports {
		if ports[i].Name == name {
			return &ports[i]
		}
	}
	return nil
}

// InstancesAffecting returns the non-root instances whose logic
// (transitively) influences the named top-level output, sorted by path.
func (df *Dataflow) InstancesAffecting(output string) ([]*InstanceNode, error) {
	root := df.design.Root
	if p := portInfoByName(root.Ports, output); p == nil || p.Dir != verilog.Output {
		return nil, fmt.Errorf("rtl: %q is not an output of top module %s", output, root.Module.Name)
	}
	start, ok := df.node(root, output)
	if !ok {
		return nil, fmt.Errorf("rtl: output %q has no net node", output)
	}
	visited := make([]bool, len(df.owner))
	stack := []int{start}
	visited[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range df.deps[n] {
			if !visited[dep] {
				visited[dep] = true
				stack = append(stack, int(dep))
			}
		}
	}
	seen := make(map[*InstanceNode]bool)
	var out []*InstanceNode
	for id, v := range visited {
		if !v {
			continue
		}
		inst := df.owner[id]
		if inst == root || seen[inst] {
			continue
		}
		seen[inst] = true
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ModuleScores implements the functional scoring of Algorithm 1: each
// module's score is the number of selected outputs it affects (through
// any of its instances).
func (df *Dataflow) ModuleScores(outputs []string) (map[string]int, error) {
	scores := make(map[string]int)
	for _, m := range df.design.NonTopModules() {
		scores[m.Name] = 0
	}
	for _, o := range outputs {
		insts, err := df.InstancesAffecting(o)
		if err != nil {
			return nil, err
		}
		mods := make(map[string]bool)
		for _, in := range insts {
			mods[in.Module.Name] = true
		}
		for name := range mods {
			scores[name]++
		}
	}
	return scores, nil
}

// ExprNets returns the names of all nets referenced by an expression
// (including index expressions), without duplicates, in first-seen order.
func ExprNets(e verilog.Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(e verilog.Expr)
	walk = func(e verilog.Expr) {
		switch x := e.(type) {
		case *verilog.Ident:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *verilog.Unary:
			walk(x.X)
		case *verilog.Binary:
			walk(x.X)
			walk(x.Y)
		case *verilog.Ternary:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case *verilog.Concat:
			for _, p := range x.Parts {
				walk(p)
			}
		case *verilog.Repeat:
			walk(x.Count)
			walk(x.X)
		case *verilog.Index:
			walk(x.X)
			walk(x.Idx)
		case *verilog.Slice:
			walk(x.X)
		}
	}
	walk(e)
	return out
}

// lvalueNets splits an assignment target into the assigned nets and any
// extra source nets referenced by index expressions (a[i] = x reads i).
func lvalueNets(e verilog.Expr) (targets, sources []string) {
	switch x := e.(type) {
	case *verilog.Ident:
		return []string{x.Name}, nil
	case *verilog.Index:
		t, s := lvalueNets(x.X)
		return t, append(s, ExprNets(x.Idx)...)
	case *verilog.Slice:
		return lvalueNets(x.X)
	case *verilog.Concat:
		for _, p := range x.Parts {
			t, s := lvalueNets(p)
			targets = append(targets, t...)
			sources = append(sources, s...)
		}
		return targets, sources
	}
	return nil, nil
}
