// Package rtl elaborates a parsed Verilog design: it resolves parameters
// and port widths, builds the module and instance hierarchy, computes the
// structural characteristics ALICE filters on (I/O pin counts), and
// provides the dataflow analysis that determines which modules affect
// selected outputs (Sec. 4 of the paper) together with the dominator-tree
// machinery used to pick eFPGA insertion points (Sec. 6).
package rtl

import (
	"fmt"
	"sort"

	"alice/internal/verilog"
)

// PortInfo is a resolved module port with a concrete width.
type PortInfo struct {
	Name  string
	Dir   verilog.Dir
	Width int
	MSB   int64
	LSB   int64
}

// NetInfo is a resolved wire/reg declaration. Depth is non-zero for 1-D
// memory arrays.
type NetInfo struct {
	Name  string
	Kind  verilog.NetKind
	Width int
	MSB   int64
	LSB   int64
	Depth int   // number of array elements (0 for plain nets)
	Base  int64 // lowest array index
}

// ModuleInfo is a module with resolved declarations under its default
// parameter values.
type ModuleInfo struct {
	Name   string
	AST    *verilog.Module
	Params verilog.Env
	Ports  []PortInfo
	Nets   map[string]*NetInfo
	Insts  []*verilog.Instance
}

// PinCount returns the total number of I/O pins of the module: the sum
// of all port widths. This is the structural metric ALICE checks against
// the eFPGA I/O capacity.
func (m *ModuleInfo) PinCount() int {
	n := 0
	for _, p := range m.Ports {
		n += p.Width
	}
	return n
}

// Port returns the named port, or nil.
func (m *ModuleInfo) Port(name string) *PortInfo {
	for i := range m.Ports {
		if m.Ports[i].Name == name {
			return &m.Ports[i]
		}
	}
	return nil
}

// InstanceNode is a node of the elaborated instance tree.
type InstanceNode struct {
	Name     string // instance name; top uses the module name
	Path     string // hierarchical path, e.g. "top.u_ctrl"
	Module   *ModuleInfo
	Env      verilog.Env // parameter environment (defaults + overrides)
	Ports    []PortInfo  // resolved under Env
	Parent   *InstanceNode
	Children []*InstanceNode
}

// PinCount returns the instance's I/O pin total under its parameter
// environment.
func (n *InstanceNode) PinCount() int {
	c := 0
	for _, p := range n.Ports {
		c += p.Width
	}
	return c
}

// Design is an elaborated design.
type Design struct {
	AST     *verilog.Design
	Top     *ModuleInfo
	Modules map[string]*ModuleInfo
	Root    *InstanceNode
	// AllInstances lists every node of the instance tree in preorder
	// (root first).
	AllInstances []*InstanceNode
}

// ElabError is an elaboration error.
type ElabError struct {
	Module string
	Msg    string
}

func (e *ElabError) Error() string {
	if e.Module == "" {
		return "rtl: " + e.Msg
	}
	return fmt.Sprintf("rtl: module %s: %s", e.Module, e.Msg)
}

func errf(mod, format string, args ...any) error {
	return &ElabError{mod, fmt.Sprintf(format, args...)}
}

// Elaborate resolves a parsed design. If topName is empty the top module
// is inferred as the unique module that is never instantiated.
func Elaborate(ast *verilog.Design, topName string) (*Design, error) {
	if len(ast.Modules) == 0 {
		return nil, errf("", "design has no modules")
	}
	d := &Design{AST: ast, Modules: make(map[string]*ModuleInfo)}
	for _, m := range ast.Modules {
		if _, dup := d.Modules[m.Name]; dup {
			return nil, errf(m.Name, "duplicate module definition")
		}
		mi, err := resolveModule(m)
		if err != nil {
			return nil, err
		}
		d.Modules[m.Name] = mi
	}
	if topName == "" {
		inferred, err := inferTop(d)
		if err != nil {
			return nil, err
		}
		topName = inferred
	}
	top, ok := d.Modules[topName]
	if !ok {
		return nil, errf("", "top module %q not found", topName)
	}
	d.Top = top
	root, err := d.elaborateInstance(top, top.Name, top.Name, top.Params, nil, 0)
	if err != nil {
		return nil, err
	}
	d.Root = root
	var walk func(n *InstanceNode)
	walk = func(n *InstanceNode) {
		d.AllInstances = append(d.AllInstances, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return d, nil
}

// inferTop returns the unique module not instantiated by any other.
func inferTop(d *Design) (string, error) {
	instantiated := make(map[string]bool)
	for _, m := range d.Modules {
		for _, in := range m.Insts {
			instantiated[in.Module] = true
		}
	}
	var tops []string
	for name := range d.Modules {
		if !instantiated[name] {
			tops = append(tops, name)
		}
	}
	sort.Strings(tops)
	switch len(tops) {
	case 1:
		return tops[0], nil
	case 0:
		return "", errf("", "no top module: instantiation graph is cyclic")
	default:
		return "", errf("", "ambiguous top module, candidates: %v", tops)
	}
}

// resolveModule computes the default parameter environment, port widths,
// and net table of a module.
func resolveModule(m *verilog.Module) (*ModuleInfo, error) {
	mi := &ModuleInfo{
		Name:   m.Name,
		AST:    m,
		Params: make(verilog.Env),
		Nets:   make(map[string]*NetInfo),
	}
	for _, p := range m.Params {
		v, err := verilog.EvalConst(p.Value, mi.Params)
		if err != nil {
			return nil, errf(m.Name, "parameter %s: %v", p.Name, err)
		}
		mi.Params[p.Name] = v
	}
	ports, err := resolvePorts(m, mi.Params)
	if err != nil {
		return nil, err
	}
	mi.Ports = ports
	for _, p := range mi.Ports {
		kind := verilog.Wire
		if portIsReg(m, p.Name) {
			kind = verilog.Reg
		}
		mi.Nets[p.Name] = &NetInfo{Name: p.Name, Kind: kind, Width: p.Width, MSB: p.MSB, LSB: p.LSB}
	}
	for _, it := range m.Items {
		switch x := it.(type) {
		case *verilog.NetDecl:
			w, err := verilog.RangeWidth(x.Range, mi.Params)
			if err != nil {
				return nil, errf(m.Name, "net declaration: %v", err)
			}
			msb, lsb, err := verilog.RangeBounds(x.Range, mi.Params)
			if err != nil {
				return nil, errf(m.Name, "net declaration: %v", err)
			}
			for _, dn := range x.Names {
				ni := &NetInfo{Name: dn.Name, Kind: x.Kind, Width: w, MSB: msb, LSB: lsb}
				if dn.Array != nil {
					lo, hi, err := verilog.RangeBounds(dn.Array, mi.Params)
					if err != nil {
						return nil, errf(m.Name, "memory %s: %v", dn.Name, err)
					}
					if lo > hi {
						lo, hi = hi, lo
					}
					ni.Depth = int(hi-lo) + 1
					ni.Base = lo
				}
				if old, exists := mi.Nets[dn.Name]; exists {
					// Re-declaration of a port net (wire [3:0] a; after
					// non-ANSI port) is tolerated if consistent.
					if old.Width != w {
						return nil, errf(m.Name, "net %s redeclared with different width", dn.Name)
					}
					if x.Kind == verilog.Reg {
						old.Kind = verilog.Reg
					}
					continue
				}
				mi.Nets[dn.Name] = ni
			}
		case *verilog.Instance:
			mi.Insts = append(mi.Insts, x)
		}
	}
	return mi, nil
}

func portIsReg(m *verilog.Module, name string) bool {
	for _, p := range m.Ports {
		if p.Name == name {
			return p.IsReg
		}
	}
	return false
}

func resolvePorts(m *verilog.Module, env verilog.Env) ([]PortInfo, error) {
	ports := make([]PortInfo, 0, len(m.Ports))
	for _, p := range m.Ports {
		w, err := verilog.RangeWidth(p.Range, env)
		if err != nil {
			return nil, errf(m.Name, "port %s: %v", p.Name, err)
		}
		msb, lsb, err := verilog.RangeBounds(p.Range, env)
		if err != nil {
			return nil, errf(m.Name, "port %s: %v", p.Name, err)
		}
		ports = append(ports, PortInfo{Name: p.Name, Dir: p.Dir, Width: w, MSB: msb, LSB: lsb})
	}
	return ports, nil
}

// elaborateInstance builds the instance subtree rooted at module mi.
func (d *Design) elaborateInstance(mi *ModuleInfo, name, path string, env verilog.Env, parent *InstanceNode, depth int) (*InstanceNode, error) {
	if depth > 64 {
		return nil, errf(mi.Name, "instance hierarchy too deep (cycle?)")
	}
	ports, err := resolvePorts(mi.AST, env)
	if err != nil {
		return nil, err
	}
	node := &InstanceNode{Name: name, Path: path, Module: mi, Env: env, Ports: ports, Parent: parent}
	for _, in := range mi.Insts {
		child, ok := d.Modules[in.Module]
		if !ok {
			return nil, errf(mi.Name, "instance %s references unknown module %q", in.Name, in.Module)
		}
		childEnv := make(verilog.Env, len(child.Params))
		for k, v := range child.Params {
			childEnv[k] = v
		}
		if err := applyParamOverrides(child, in, env, childEnv); err != nil {
			return nil, err
		}
		if err := checkConnections(mi, child, in); err != nil {
			return nil, err
		}
		cn, err := d.elaborateInstance(child, in.Name, path+"."+in.Name, childEnv, node, depth+1)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, cn)
	}
	return node, nil
}

func applyParamOverrides(child *ModuleInfo, in *verilog.Instance, parentEnv, childEnv verilog.Env) error {
	ordered := orderedParamNames(child.AST)
	for i, ov := range in.Params {
		name := ov.Port
		if name == "" {
			if i >= len(ordered) {
				return errf(child.Name, "instance %s: too many positional parameter overrides", in.Name)
			}
			name = ordered[i]
		}
		if _, ok := childEnv[name]; !ok {
			return errf(child.Name, "instance %s overrides unknown parameter %q", in.Name, name)
		}
		v, err := verilog.EvalConst(ov.Expr, parentEnv)
		if err != nil {
			return errf(child.Name, "instance %s parameter %s: %v", in.Name, name, err)
		}
		childEnv[name] = v
	}
	// Recompute localparams that depend on overridden parameters.
	for _, p := range child.AST.Params {
		if p.IsLocal {
			v, err := verilog.EvalConst(p.Value, childEnv)
			if err != nil {
				return errf(child.Name, "localparam %s: %v", p.Name, err)
			}
			childEnv[p.Name] = v
		}
	}
	return nil
}

func orderedParamNames(m *verilog.Module) []string {
	var names []string
	for _, p := range m.Params {
		if !p.IsLocal {
			names = append(names, p.Name)
		}
	}
	return names
}

func checkConnections(parent, child *ModuleInfo, in *verilog.Instance) error {
	named := false
	for _, c := range in.Conns {
		if c.Port != "" {
			named = true
			if child.Port(c.Port) == nil {
				return errf(parent.Name, "instance %s connects unknown port %q of %s",
					in.Name, c.Port, child.Name)
			}
		}
	}
	if !named && len(in.Conns) > len(child.Ports) {
		return errf(parent.Name, "instance %s has %d positional connections but %s has %d ports",
			in.Name, len(in.Conns), child.Name, len(child.Ports))
	}
	return nil
}

// InstanceByPath returns the instance with the given hierarchical path,
// or nil.
func (d *Design) InstanceByPath(path string) *InstanceNode {
	for _, n := range d.AllInstances {
		if n.Path == path {
			return n
		}
	}
	return nil
}

// NonTopModules returns all modules except the top, sorted by name.
func (d *Design) NonTopModules() []*ModuleInfo {
	var out []*ModuleInfo
	for _, m := range d.Modules {
		if m != d.Top {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NonRootInstances returns every instance except the root, in preorder.
func (d *Design) NonRootInstances() []*InstanceNode {
	if len(d.AllInstances) == 0 {
		return nil
	}
	return d.AllInstances[1:]
}
