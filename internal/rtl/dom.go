package rtl

// Dominators computes immediate dominators for a rooted directed graph
// using the Cooper–Harvey–Kennedy iterative algorithm. succs[v] lists the
// successors of node v; root must reach every node that matters. The
// returned slice maps each node to its immediate dominator (idom[root] ==
// root); nodes unreachable from root map to -1.
//
// ALICE uses dominator analysis on the module hierarchy to choose where
// to insert an eFPGA instance that absorbs modules spread around the
// design (Sec. 6 of the paper).
func Dominators(n, root int, succs [][]int) []int {
	// Reverse postorder numbering.
	order := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		v, i int
	}
	stack := []frame{{root, 0}}
	state[root] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(succs[f.v]) {
			w := succs[f.v][f.i]
			f.i++
			if state[w] == 0 {
				state[w] = 1
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		state[f.v] = 2
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make([]int, n)
	for i := range rpo {
		rpo[i] = -1
	}
	for i, v := range order {
		rpo[v] = i
	}
	preds := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, w := range succs[v] {
			preds[w] = append(preds[w], v)
		}
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, v := range order {
			if v == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[v] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// LCA returns the lowest common ancestor of the given instance nodes in
// the instance tree, or nil for an empty slice. For a single node it
// returns that node's parent if it has one (the enclosing module is the
// natural insertion point), otherwise the node itself.
func LCA(nodes []*InstanceNode) *InstanceNode {
	if len(nodes) == 0 {
		return nil
	}
	depth := func(n *InstanceNode) int {
		d := 0
		for n.Parent != nil {
			d++
			n = n.Parent
		}
		return d
	}
	cur := nodes[0]
	if len(nodes) == 1 {
		if cur.Parent != nil {
			return cur.Parent
		}
		return cur
	}
	for _, n := range nodes[1:] {
		a, b := cur, n
		da, db := depth(a), depth(b)
		for da > db {
			a = a.Parent
			da--
		}
		for db > da {
			b = b.Parent
			db--
		}
		for a != b {
			a = a.Parent
			b = b.Parent
		}
		cur = a
	}
	return cur
}

// InsertionPoint returns the instance under which an eFPGA absorbing the
// given instances should be placed: the lowest common ancestor of the
// redacted instances (equivalently, their nearest common dominator in
// the hierarchy tree).
func InsertionPoint(nodes []*InstanceNode) *InstanceNode {
	if len(nodes) == 0 {
		return nil
	}
	lca := LCA(nodes)
	// If the LCA is itself one of the redacted instances, insert in its
	// parent.
	for _, n := range nodes {
		if n == lca && lca.Parent != nil {
			return lca.Parent
		}
	}
	return lca
}
