package rtl

// Characteristics summarizes a design the way Table 1 of the paper does:
// the number of (non-top) modules, the number of (non-root) instances,
// and the range of module I/O pin counts.
type Characteristics struct {
	Design    string
	Modules   int
	Instances int
	MinPins   int
	MaxPins   int
}

// Characterize computes Table-1 style statistics for a design.
func Characterize(d *Design) Characteristics {
	c := Characteristics{Design: d.Top.Name}
	mods := d.NonTopModules()
	c.Modules = len(mods)
	c.Instances = len(d.NonRootInstances())
	for i, m := range mods {
		p := m.PinCount()
		if i == 0 || p < c.MinPins {
			c.MinPins = p
		}
		if p > c.MaxPins {
			c.MaxPins = p
		}
	}
	return c
}

// InstancesOfModule returns every instance of the named module, in
// preorder.
func (d *Design) InstancesOfModule(name string) []*InstanceNode {
	var out []*InstanceNode
	for _, n := range d.AllInstances {
		if n.Module.Name == name {
			out = append(out, n)
		}
	}
	return out
}
