package rtl

import (
	"context"
	"testing"

	"alice/internal/verilog"
)

const hierSrc = `
module top (
  input wire clk,
  input wire [7:0] a,
  input wire [7:0] b,
  output wire [7:0] sum,
  output wire [7:0] prod_lo,
  output wire flag
);
  wire [7:0] t;
  addu u_add (.clk(clk), .x(a), .y(b), .z(sum));
  mulu u_mul (.clk(clk), .x(a), .y(b), .z(prod_lo));
  addu u_add2 (.clk(clk), .x(a), .y(8'h01), .z(t));
  assign flag = t[0];
endmodule

module addu (
  input wire clk,
  input wire [7:0] x,
  input wire [7:0] y,
  output reg [7:0] z
);
  always @(posedge clk) z <= x + y;
endmodule

module mulu (
  input wire clk,
  input wire [7:0] x,
  input wire [7:0] y,
  output reg [7:0] z
);
  wire [7:0] p = x * y;
  always @(posedge clk) z <= p;
endmodule
`

func elab(t *testing.T, src, top string) *Design {
	t.Helper()
	ast, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Elaborate(ast, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func TestElaborateHierarchy(t *testing.T) {
	d := elab(t, hierSrc, "")
	if d.Top.Name != "top" {
		t.Fatalf("inferred top = %s", d.Top.Name)
	}
	if len(d.AllInstances) != 4 {
		t.Fatalf("got %d instances", len(d.AllInstances))
	}
	if len(d.NonRootInstances()) != 3 {
		t.Fatalf("got %d non-root instances", len(d.NonRootInstances()))
	}
	n := d.InstanceByPath("top.u_mul")
	if n == nil || n.Module.Name != "mulu" {
		t.Fatalf("u_mul lookup failed: %+v", n)
	}
	if got := n.PinCount(); got != 25 {
		t.Errorf("mulu pin count = %d, want 25", got)
	}
	if got := d.Modules["addu"].PinCount(); got != 25 {
		t.Errorf("addu pin count = %d, want 25", got)
	}
}

func TestCharacterize(t *testing.T) {
	d := elab(t, hierSrc, "")
	c := Characterize(d)
	if c.Modules != 2 || c.Instances != 3 {
		t.Errorf("modules=%d instances=%d, want 2/3", c.Modules, c.Instances)
	}
	if c.MinPins != 25 || c.MaxPins != 25 {
		t.Errorf("pins [%d,%d], want [25,25]", c.MinPins, c.MaxPins)
	}
}

func TestDataflowAffecting(t *testing.T) {
	d := elab(t, hierSrc, "")
	df, err := NewDataflow(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	// sum is driven only by u_add.
	insts, err := df.InstancesAffecting("sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Path != "top.u_add" {
		t.Fatalf("sum affected by %v", paths(insts))
	}
	// flag is driven by u_add2 (through t).
	insts, err = df.InstancesAffecting("flag")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Path != "top.u_add2" {
		t.Fatalf("flag affected by %v", paths(insts))
	}
	// prod_lo is driven only by u_mul.
	insts, err = df.InstancesAffecting("prod_lo")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Path != "top.u_mul" {
		t.Fatalf("prod_lo affected by %v", paths(insts))
	}
	// Unknown output errors.
	if _, err := df.InstancesAffecting("nope"); err == nil {
		t.Error("expected error for unknown output")
	}
	// Input port is not an output.
	if _, err := df.InstancesAffecting("a"); err == nil {
		t.Error("expected error for input port")
	}
}

func TestModuleScores(t *testing.T) {
	d := elab(t, hierSrc, "")
	df, err := NewDataflow(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := df.ModuleScores([]string{"sum", "flag", "prod_lo"})
	if err != nil {
		t.Fatal(err)
	}
	// addu affects sum and flag (via two instances) -> 2; mulu -> 1.
	if scores["addu"] != 2 {
		t.Errorf("addu score = %d, want 2", scores["addu"])
	}
	if scores["mulu"] != 1 {
		t.Errorf("mulu score = %d, want 1", scores["mulu"])
	}
}

func TestDataflowChain(t *testing.T) {
	src := `
module top (input wire [3:0] a, output wire [3:0] o);
  wire [3:0] m;
  stage s1 (.in(a), .out(m));
  stage s2 (.in(m), .out(o));
endmodule
module stage (input wire [3:0] in, output wire [3:0] out);
  assign out = ~in;
endmodule
`
	d := elab(t, src, "")
	df, err := NewDataflow(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := df.InstancesAffecting("o")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("chained stages: affected = %v, want both", paths(insts))
	}
}

func paths(ns []*InstanceNode) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Path)
	}
	return out
}

func TestElaborateErrors(t *testing.T) {
	cases := []string{
		// Unknown module instantiated.
		"module top (input wire a); foo u (.x(a)); endmodule",
		// Unknown port in connection.
		`module top (input wire a); leaf u (.nope(a)); endmodule
		 module leaf (input wire x); endmodule`,
		// Duplicate module.
		"module m (input wire a); endmodule module m (input wire a); endmodule",
		// Two tops.
		"module t1 (input wire a); endmodule module t2 (input wire a); endmodule",
	}
	for i, src := range cases {
		ast, err := verilog.Parse(src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if _, err := Elaborate(ast, ""); err == nil {
			t.Errorf("case %d: expected elaboration error", i)
		}
	}
}

func TestParamOverrideWidths(t *testing.T) {
	src := `
module top (input wire [15:0] a, output wire [15:0] o);
  pass #(.W(16)) u (.in(a), .out(o));
endmodule
module pass #(parameter W = 8) (input wire [W-1:0] in, output wire [W-1:0] out);
  assign out = in;
endmodule
`
	d := elab(t, src, "")
	n := d.InstanceByPath("top.u")
	if n == nil {
		t.Fatal("instance not found")
	}
	if n.Ports[0].Width != 16 {
		t.Errorf("overridden port width = %d, want 16", n.Ports[0].Width)
	}
	// Default module info keeps width 8.
	if d.Modules["pass"].Ports[0].Width != 8 {
		t.Errorf("default port width = %d, want 8", d.Modules["pass"].Ports[0].Width)
	}
}
