package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alice/internal/verilog"
)

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
	succs := [][]int{{1, 2}, {3}, {3}, {4}, {}}
	idom := Dominators(5, 0, succs)
	want := []int{0, 0, 0, 0, 3}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], w)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3
	succs := [][]int{{1}, {2}, {1, 3}, {}}
	idom := Dominators(4, 0, succs)
	want := []int{0, 0, 1, 2}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], w)
		}
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	succs := [][]int{{1}, {}, {1}} // node 2 unreachable from 0
	idom := Dominators(3, 0, succs)
	if idom[2] != -1 {
		t.Errorf("unreachable node idom = %d, want -1", idom[2])
	}
}

// Property: on a random tree (edges parent->child), the immediate
// dominator of every node is its parent.
func TestQuickDominatorsOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		parent := make([]int, n)
		succs := make([][]int, n)
		for v := 1; v < n; v++ {
			p := r.Intn(v)
			parent[v] = p
			succs[p] = append(succs[p], v)
		}
		idom := Dominators(n, 0, succs)
		for v := 1; v < n; v++ {
			if idom[v] != parent[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding a bypass edge root->v can only move v's dominator up
// to the root.
func TestQuickDominatorsBypass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		succs := make([][]int, n)
		for v := 1; v < n; v++ {
			succs[r.Intn(v)] = append(succs[r.Intn(v)], v)
		}
		// Ensure chain connectivity so everything is reachable.
		for v := 1; v < n; v++ {
			succs[v-1] = append(succs[v-1], v)
		}
		v := 1 + r.Intn(n-1)
		succs[0] = append(succs[0], v)
		idom := Dominators(n, 0, succs)
		// v now has a direct edge from the root, so only the root
		// dominates it.
		return idom[v] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLCAAndInsertionPoint(t *testing.T) {
	src := `
module top (input wire a, output wire o1, output wire o2);
  mid u_mid (.a(a), .o(o1));
  leaf u_leaf0 (.x(a), .y(o2));
endmodule
module mid (input wire a, output wire o);
  wire t;
  leaf u_leaf1 (.x(a), .y(t));
  leaf u_leaf2 (.x(t), .y(o));
endmodule
module leaf (input wire x, output wire y);
  assign y = ~x;
endmodule
`
	ast, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(ast, "top")
	if err != nil {
		t.Fatal(err)
	}
	l1 := d.InstanceByPath("top.u_mid.u_leaf1")
	l2 := d.InstanceByPath("top.u_mid.u_leaf2")
	l0 := d.InstanceByPath("top.u_leaf0")
	mid := d.InstanceByPath("top.u_mid")
	if l1 == nil || l2 == nil || l0 == nil || mid == nil {
		t.Fatal("instance lookup failed")
	}
	if got := LCA([]*InstanceNode{l1, l2}); got != mid {
		t.Errorf("LCA(l1,l2) = %v, want mid", got.Path)
	}
	if got := LCA([]*InstanceNode{l1, l0}); got != d.Root {
		t.Errorf("LCA(l1,l0) = %v, want root", got.Path)
	}
	if got := InsertionPoint([]*InstanceNode{l1}); got != mid {
		t.Errorf("InsertionPoint(l1) = %v, want mid", got.Path)
	}
	if got := InsertionPoint([]*InstanceNode{l1, l2}); got != mid {
		t.Errorf("InsertionPoint(l1,l2) = %v, want mid", got.Path)
	}
	if got := InsertionPoint(nil); got != nil {
		t.Errorf("InsertionPoint(nil) = %v, want nil", got)
	}
}
