package verilog

import (
	"fmt"
	"strconv"
)

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses Verilog source text into a Design.
func Parse(src string) (*Design, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	d := &Design{}
	for p.cur().Kind != EOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		d.Modules = append(d.Modules, m)
	}
	return d, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errorf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{p.cur().Pos, fmt.Sprintf(format, args...)}
}

// parseModule parses: module name [#(params)] [(ports)] ; items endmodule
func (p *Parser) parseModule() (*Module, error) {
	start, err := p.expect(KWMODULE)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text, Pos: start.Pos}

	if p.accept(HASH) {
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		for {
			if !p.accept(KWPARAMETER) && len(m.Params) == 0 {
				return nil, p.errorf("expected parameter in module parameter list")
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ASSIGNOP); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pn.Text, Value: v})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}

	if p.accept(LPAREN) {
		if err := p.parsePortList(m); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}

	for p.cur().Kind != KWENDMODULE {
		if p.cur().Kind == EOF {
			return nil, p.errorf("unexpected EOF inside module %s", m.Name)
		}
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
	p.advance() // endmodule
	return m, nil
}

// parsePortList handles both ANSI (input [3:0] a, output reg b) and
// non-ANSI (a, b, c) header styles, stopping at the closing paren.
func (p *Parser) parsePortList(m *Module) error {
	if p.accept(RPAREN) {
		return nil
	}
	ansi := p.cur().Kind == KWINPUT || p.cur().Kind == KWOUTPUT || p.cur().Kind == KWINOUT
	if !ansi {
		for {
			t, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, &Port{Name: t.Text, Dir: Input, Pos: t.Pos})
			if !p.accept(COMMA) {
				break
			}
		}
		_, err := p.expect(RPAREN)
		return err
	}
	// ANSI style.
	var dir Dir
	var rng *Range
	var isReg bool
	for {
		switch p.cur().Kind {
		case KWINPUT, KWOUTPUT, KWINOUT:
			switch p.advance().Kind {
			case KWINPUT:
				dir = Input
			case KWOUTPUT:
				dir = Output
			default:
				dir = Inout
			}
			isReg = false
			p.accept(KWWIRE)
			if p.accept(KWREG) {
				isReg = true
			}
			p.accept(KWSIGNED)
			rng = nil
			if p.cur().Kind == LBRACK {
				r, err := p.parseRange()
				if err != nil {
					return err
				}
				rng = r
			}
		}
		t, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		m.Ports = append(m.Ports, &Port{Name: t.Text, Dir: dir, Range: rng, IsReg: isReg, Pos: t.Pos})
		if !p.accept(COMMA) {
			break
		}
	}
	_, err := p.expect(RPAREN)
	return err
}

// parseRange parses [msb:lsb].
func (p *Parser) parseRange() (*Range, error) {
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RBRACK); err != nil {
		return nil, err
	}
	return &Range{MSB: msb, LSB: lsb}, nil
}

func (p *Parser) parseItem(m *Module) error {
	switch p.cur().Kind {
	case KWPARAMETER, KWLOCALPARAM:
		isLocal := p.advance().Kind == KWLOCALPARAM
		for {
			n, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			if _, err := p.expect(ASSIGNOP); err != nil {
				return err
			}
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			m.Params = append(m.Params, &Param{Name: n.Text, Value: v, IsLocal: isLocal})
			if !p.accept(COMMA) {
				break
			}
		}
		_, err := p.expect(SEMI)
		return err

	case KWINPUT, KWOUTPUT, KWINOUT:
		var dir Dir
		switch p.advance().Kind {
		case KWINPUT:
			dir = Input
		case KWOUTPUT:
			dir = Output
		default:
			dir = Inout
		}
		p.accept(KWWIRE)
		isReg := p.accept(KWREG)
		p.accept(KWSIGNED)
		var rng *Range
		if p.cur().Kind == LBRACK {
			r, err := p.parseRange()
			if err != nil {
				return err
			}
			rng = r
		}
		for {
			n, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			found := false
			for _, pt := range m.Ports {
				if pt.Name == n.Text {
					pt.Dir = dir
					pt.Range = rng
					pt.IsReg = pt.IsReg || isReg
					found = true
					break
				}
			}
			if !found {
				return &ParseError{n.Pos, fmt.Sprintf("port %q declared in body but not in module header", n.Text)}
			}
			if !p.accept(COMMA) {
				break
			}
		}
		_, err := p.expect(SEMI)
		return err

	case KWWIRE, KWREG, KWINTEGER:
		kw := p.advance().Kind
		kind := Wire
		var rng *Range
		if kw == KWREG {
			kind = Reg
		}
		if kw == KWINTEGER {
			kind = Reg
			rng = &Range{MSB: Num(31), LSB: Num(0)}
		}
		p.accept(KWSIGNED)
		if p.cur().Kind == LBRACK {
			r, err := p.parseRange()
			if err != nil {
				return err
			}
			rng = r
		}
		decl := &NetDecl{Kind: kind, Range: rng, Pos: p.cur().Pos}
		var inits []*ContAssign
		for {
			n, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			dn := DeclName{Name: n.Text}
			if p.cur().Kind == LBRACK {
				ar, err := p.parseRange()
				if err != nil {
					return err
				}
				dn.Array = ar
			}
			decl.Names = append(decl.Names, dn)
			if p.accept(ASSIGNOP) {
				if kind != Wire {
					return p.errorf("initializer only allowed on wire declarations")
				}
				rhs, err := p.parseExpr()
				if err != nil {
					return err
				}
				inits = append(inits, &ContAssign{LHS: ID(n.Text), RHS: rhs, Pos: n.Pos})
			}
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
		m.Items = append(m.Items, decl)
		for _, ca := range inits {
			m.Items = append(m.Items, ca)
		}
		return nil

	case KWASSIGN:
		p.advance()
		for {
			lhs, err := p.parseLValue()
			if err != nil {
				return err
			}
			if _, err := p.expect(ASSIGNOP); err != nil {
				return err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return err
			}
			m.Items = append(m.Items, &ContAssign{LHS: lhs, RHS: rhs, Pos: p.cur().Pos})
			if !p.accept(COMMA) {
				break
			}
		}
		_, err := p.expect(SEMI)
		return err

	case KWALWAYS:
		pos := p.advance().Pos
		a := &Always{Pos: pos}
		if _, err := p.expect(AT); err != nil {
			return err
		}
		if p.accept(STAR) {
			a.Star = true
		} else {
			if _, err := p.expect(LPAREN); err != nil {
				return err
			}
			if p.accept(STAR) {
				a.Star = true
			} else {
				for {
					ev := Event{Edge: EdgeNone}
					if p.accept(KWPOSEDGE) {
						ev.Edge = EdgePos
					} else if p.accept(KWNEGEDGE) {
						ev.Edge = EdgeNeg
					}
					sig, err := p.parseExpr()
					if err != nil {
						return err
					}
					ev.Sig = sig
					a.Events = append(a.Events, ev)
					if !p.accept(KWOR) && !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return err
		}
		a.Body = body
		m.Items = append(m.Items, a)
		return nil

	case KWINITIAL:
		pos := p.advance().Pos
		body, err := p.parseStmt()
		if err != nil {
			return err
		}
		m.Items = append(m.Items, &Always{Initial: true, Body: body, Pos: pos})
		return nil

	case IDENT:
		return p.parseInstance(m)

	case KWGENERATE, KWENDGENERATE, KWFUNCTION, KWGENVAR:
		return p.errorf("unsupported construct %s", p.cur().Kind)
	}
	return p.errorf("unexpected %s in module body", p.cur())
}

// parseInstance parses: ModName [#(overrides)] InstName ( conns ) [, InstName (conns)] ;
func (p *Parser) parseInstance(m *Module) error {
	modTok, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	var params []Connection
	if p.accept(HASH) {
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		params, err = p.parseConnections()
		if err != nil {
			return err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
	}
	for {
		instTok, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		conns, err := p.parseConnections()
		if err != nil {
			return err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
		m.Items = append(m.Items, &Instance{
			Module: modTok.Text, Name: instTok.Text,
			Params: params, Conns: conns, Pos: instTok.Pos,
		})
		if !p.accept(COMMA) {
			break
		}
	}
	_, err = p.expect(SEMI)
	return err
}

// parseConnections parses a (possibly empty) comma-separated list of
// .name(expr) or positional expr connections.
func (p *Parser) parseConnections() ([]Connection, error) {
	var conns []Connection
	if p.cur().Kind == RPAREN {
		return conns, nil
	}
	for {
		if p.accept(DOT) {
			n, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			var e Expr
			if p.cur().Kind != RPAREN {
				var err error
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			conns = append(conns, Connection{Port: n.Text, Expr: e})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			conns = append(conns, Connection{Expr: e})
		}
		if !p.accept(COMMA) {
			break
		}
	}
	return conns, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case SEMI:
		p.advance()
		return &Null{}, nil

	case KWBEGIN:
		p.advance()
		b := &Block{}
		if p.accept(COLON) {
			lbl, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			b.Label = lbl.Text
		}
		for p.cur().Kind != KWEND {
			if p.cur().Kind == EOF {
				return nil, p.errorf("unexpected EOF inside begin/end")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		p.advance()
		return b, nil

	case KWIF:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept(KWELSE) {
			el, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = el
		}
		return st, nil

	case KWCASE, KWCASEZ, KWCASEX:
		z := p.advance().Kind != KWCASE
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		c := &Case{Subject: subj, Z: z}
		for p.cur().Kind != KWENDCASE {
			if p.cur().Kind == EOF {
				return nil, p.errorf("unexpected EOF inside case")
			}
			item := CaseItem{}
			if p.accept(KWDEFAULT) {
				p.accept(COLON)
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Exprs = append(item.Exprs, e)
					if !p.accept(COMMA) {
						break
					}
				}
				if _, err := p.expect(COLON); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			item.Body = body
			c.Items = append(c.Items, item)
		}
		p.advance()
		return c, nil

	case KWFOR:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		init, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		step, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Step: step, Body: body}, nil

	default:
		a, err := p.parseAssignStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return a, nil
	}
}

// parseSimpleAssign parses "lhs = rhs" without a trailing semicolon
// (for-loop init/step clauses).
func (p *Parser) parseSimpleAssign() (*Assign, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGNOP); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{LHS: lhs, RHS: rhs, Blocking: true}, nil
}

// parseAssignStmt parses "lhs = rhs" or "lhs <= rhs".
func (p *Parser) parseAssignStmt() (*Assign, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	blocking := false
	switch p.cur().Kind {
	case ASSIGNOP:
		p.advance()
		blocking = true
	case LE:
		p.advance()
	default:
		return nil, p.errorf("expected = or <= in assignment, found %s", p.cur())
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{LHS: lhs, RHS: rhs, Blocking: blocking}, nil
}

// parseLValue parses an assignment target: identifier, bit-select,
// part-select, or concatenation of lvalues.
func (p *Parser) parseLValue() (Expr, error) {
	if p.accept(LBRACE) {
		c := &Concat{}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACE); err != nil {
			return nil, err
		}
		return c, nil
	}
	n, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var e Expr = ID(n.Text)
	for p.cur().Kind == LBRACK {
		p.advance()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(COLON) {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Slice{X: e, MSB: idx, LSB: lsb}
		} else {
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Index{X: e, Idx: idx}
		}
	}
	return e, nil
}

// Binary operator precedence, higher binds tighter. The conditional
// operator is handled separately (lowest, right-associative).
func binPrec(k Kind) int {
	switch k {
	case PIPE2:
		return 1
	case AMPAMP:
		return 2
	case PIPE:
		return 3
	case CARET, XNOR:
		return 4
	case AMP:
		return 5
	case EQEQ, NEQ, EQ3, NEQ3:
		return 6
	case LT, LE, GT, GE:
		return 7
	case SHL, SHR:
		return 8
	case PLUS, MINUS:
		return 9
	case STAR, SLASH, PERCENT:
		return 10
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) {
	e, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.accept(QUEST) {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: e, Then: t, Else: f}, nil
	}
	return e, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec {
			return lhs, nil
		}
		op := p.advance().Kind
		if op == EQ3 {
			op = EQEQ
		}
		if op == NEQ3 {
			op = NEQ
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case BANG, TILDE, AMP, NAND, PIPE, NOR, CARET, XNOR, MINUS, PLUS:
		op := p.advance().Kind
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == PLUS {
			return x, nil
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == LBRACK {
		p.advance()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(COLON) {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Slice{X: e, MSB: idx, LSB: lsb}
		} else {
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Index{X: e, Idx: idx}
		}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case IDENT:
		return ID(p.advance().Text), nil

	case NUMBER:
		t := p.advance()
		n, err := parseNumberToken(t.Text)
		if err != nil {
			return nil, &ParseError{t.Pos, err.Error()}
		}
		return n, nil

	case LPAREN:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil

	case LBRACE:
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LBRACE {
			// Replication {N{...}}.
			p.advance()
			inner := &Concat{}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				inner.Parts = append(inner.Parts, e)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			var x Expr = inner
			if len(inner.Parts) == 1 {
				x = inner.Parts[0]
			}
			return &Repeat{Count: first, X: x}, nil
		}
		c := &Concat{Parts: []Expr{first}}
		for p.accept(COMMA) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect(RBRACE); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errorf("unexpected %s in expression", p.cur())
}

// parseNumberToken converts literal text ("42", "8'hFF", "4'b1?10") into
// a Number node. Wildcard digits (x, z, ?) set DontCare bits.
func parseNumberToken(text string) (*Number, error) {
	s := stripUnderscores(text)
	tick := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			tick = i
			break
		}
	}
	if tick < 0 {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid decimal literal %q", text)
		}
		return &Number{Width: 32, Val: v}, nil
	}
	width := 32
	sized := false
	if tick > 0 {
		w, err := strconv.Atoi(s[:tick])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("invalid literal size in %q", text)
		}
		width = w
		sized = true
	}
	rest := s[tick+1:]
	if len(rest) > 0 && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("invalid based literal %q", text)
	}
	base := rest[0] | 0x20 // lowercase
	digits := rest[1:]
	var bitsPerDigit uint
	switch base {
	case 'b':
		bitsPerDigit = 1
	case 'o':
		bitsPerDigit = 3
	case 'h':
		bitsPerDigit = 4
	case 'd':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid decimal digits in %q", text)
		}
		return &Number{Width: width, Val: v, Sized: sized, Base: 'd'}, nil
	default:
		return nil, fmt.Errorf("invalid base %q in %q", string(base), text)
	}
	var val, dc uint64
	nbits := uint(0)
	for i := 0; i < len(digits); i++ {
		c := digits[i] | 0x20
		var dv uint64
		wild := false
		switch {
		case c >= '0' && c <= '9':
			dv = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			dv = uint64(c-'a') + 10
		case c == 'x' || c == 'z' || c == '?':
			wild = true
		default:
			return nil, fmt.Errorf("invalid digit %q in %q", string(digits[i]), text)
		}
		if dv >= (1 << bitsPerDigit) {
			return nil, fmt.Errorf("digit %q out of range for base in %q", string(digits[i]), text)
		}
		nbits += bitsPerDigit
		if nbits > 64 {
			return nil, fmt.Errorf("literal %q exceeds 64 significant bits", text)
		}
		val = val << bitsPerDigit
		dc = dc << bitsPerDigit
		if wild {
			dc |= (1 << bitsPerDigit) - 1
		} else {
			val |= dv
		}
	}
	if width < 64 {
		mask := (uint64(1) << uint(width)) - 1
		val &= mask
		dc &= mask
	}
	return &Number{Width: width, Val: val, DontCare: dc, Sized: sized, Base: base}, nil
}
