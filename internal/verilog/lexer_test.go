package verilog

import "testing"

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("module m; wire [3:0] a; assign a = 4'hF; endmodule")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []Kind{KWMODULE, IDENT, SEMI, KWWIRE, LBRACK, NUMBER, COLON,
		NUMBER, RBRACK, IDENT, SEMI, KWASSIGN, IDENT, ASSIGNOP, NUMBER,
		SEMI, KWENDMODULE, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]Kind{
		"&&": AMPAMP, "||": PIPE2, "==": EQEQ, "!=": NEQ, "<=": LE,
		">=": GE, "<<": SHL, ">>": SHR, "~^": XNOR, "^~": XNOR,
		"~&": NAND, "~|": NOR, "===": EQ3, "!==": NEQ3, "<<<": SHL,
		">>>": SHR, "?": QUEST, "@": AT, "#": HASH,
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", src, err)
		}
		if toks[0].Kind != want {
			t.Errorf("Tokenize(%q) = %s, want %s", src, toks[0].Kind, want)
		}
		if len(toks) != 2 {
			t.Errorf("Tokenize(%q): expected single token + EOF, got %v", src, toks)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment
module /* block
   comment */ m;
` + "`timescale 1ns/1ps" + `
endmodule`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []Kind{KWMODULE, IDENT, SEMI, KWENDMODULE, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"unterminated`, "\\escape"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		src      string
		width    int
		val      uint64
		dontCare uint64
		sized    bool
	}{
		{"42", 32, 42, 0, false},
		{"8'hFF", 8, 255, 0, true},
		{"8'hff", 8, 255, 0, true},
		{"4'b1010", 4, 10, 0, true},
		{"4'b10_10", 4, 10, 0, true},
		{"12'o777", 12, 511, 0, true},
		{"16'd1000", 16, 1000, 0, true},
		{"'hA", 32, 10, 0, false},
		{"4'b1?10", 4, 0b1010 &^ 0b0100, 0b0100, true},
		{"8'hF?", 8, 0xF0, 0x0F, true},
		{"3'b111", 3, 7, 0, true},
		{"256'd0", 256, 0, 0, true},
		{"2'b111", 2, 3, 0, true}, // truncated to width
	}
	for _, c := range cases {
		n, err := parseNumberToken(c.src)
		if err != nil {
			t.Errorf("parseNumberToken(%q): %v", c.src, err)
			continue
		}
		if n.Width != c.width || n.Val != c.val || n.DontCare != c.dontCare || n.Sized != c.sized {
			t.Errorf("parseNumberToken(%q) = {w:%d v:%d dc:%#x sized:%v}, want {w:%d v:%d dc:%#x sized:%v}",
				c.src, n.Width, n.Val, n.DontCare, n.Sized, c.width, c.val, c.dontCare, c.sized)
		}
	}
	for _, bad := range []string{"8'q12", "4'b", "'b", "9999999999999999999999", "8'b12"} {
		if _, err := parseNumberToken(bad); err == nil {
			t.Errorf("parseNumberToken(%q): expected error", bad)
		}
	}
}
