package verilog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRoundTripModules checks print → parse → print is a fixed point on
// realistic modules.
func TestRoundTripModules(t *testing.T) {
	for _, src := range []string{sampleCounter, sampleNonANSI} {
		d1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		out1 := Print(d1)
		d2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, out1)
		}
		out2 := Print(d2)
		if out1 != out2 {
			t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

// randExpr builds a random expression over a small identifier pool.
func randExpr(r *rand.Rand, depth int) Expr {
	idents := []string{"a", "b", "c", "sel", "data"}
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return ID(idents[r.Intn(len(idents))])
		}
		w := 1 + r.Intn(16)
		var v uint64
		if w < 64 {
			v = r.Uint64() & ((1 << uint(w)) - 1)
		} else {
			v = r.Uint64()
		}
		return &Number{Width: w, Val: v, Sized: true, Base: 'h'}
	}
	switch r.Intn(8) {
	case 0:
		ops := []Kind{BANG, TILDE, AMP, PIPE, CARET, NAND, NOR, XNOR, MINUS}
		return &Unary{Op: ops[r.Intn(len(ops))], X: randExpr(r, depth-1)}
	case 1, 2, 3:
		ops := []Kind{PLUS, MINUS, STAR, AMP, PIPE, CARET, XNOR, AMPAMP,
			PIPE2, EQEQ, NEQ, LT, LE, GT, GE, SHL, SHR}
		return &Binary{Op: ops[r.Intn(len(ops))], X: randExpr(r, depth-1), Y: randExpr(r, depth-1)}
	case 4:
		return &Ternary{Cond: randExpr(r, depth-1), Then: randExpr(r, depth-1), Else: randExpr(r, depth-1)}
	case 5:
		n := 1 + r.Intn(3)
		c := &Concat{}
		for i := 0; i < n; i++ {
			c.Parts = append(c.Parts, randExpr(r, depth-1))
		}
		return c
	case 6:
		return &Repeat{Count: Num(uint64(1 + r.Intn(4))), X: randExpr(r, depth-1)}
	default:
		return &Index{X: ID("data"), Idx: randExpr(r, depth-1)}
	}
}

// TestQuickExprRoundTrip: for random expression trees, printing and
// reparsing yields the same printed form.
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		s1 := ExprString(e)
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Logf("parse of %q failed: %v", s1, err)
			return false
		}
		s2 := ExprString(e2)
		if s1 != s2 {
			t.Logf("mismatch:\n s1=%s\n s2=%s", s1, s2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumberStringWildcard(t *testing.T) {
	n := &Number{Width: 4, Val: 0b1010, DontCare: 0b0100, Sized: true, Base: 'b'}
	s := numberString(n)
	e, err := ParseExpr(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	n2 := e.(*Number)
	if n2.Val != 0b1010&^0b0100 || n2.DontCare != 0b0100 || n2.Width != 4 {
		t.Errorf("wildcard round trip %q -> %+v", s, n2)
	}
}

func TestPrintAlwaysVariants(t *testing.T) {
	src := `
module m (input wire clk, input wire a, input wire b, output reg q, output reg p);
  always @(*) q = a & b;
  always @(a or b) p = a | b;
endmodule
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(d)
	d2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if Print(d2) != out {
		t.Error("always variants round trip unstable")
	}
}
