package verilog

import (
	"fmt"
	"strings"
)

// Lexer converts Verilog source text into a stream of tokens.
// Comments (// and /* */), whitespace, and compiler directives
// (lines starting with `) are skipped.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumCont(c byte) bool {
	return isDigit(c) || c == '_' || (c >= 'a' && c <= 'f') ||
		(c >= 'A' && c <= 'F') || c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?'
}

// skipSpace consumes whitespace, comments, and compiler directive lines.
func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{start, "unterminated block comment"}
			}
		case c == '`':
			// Compiler directive (e.g. `timescale): skip to end of line.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: p}, nil
	case isDigit(c), c == '\'':
		return l.lexNumber(p)
	case c == '"':
		l.advance()
		start := l.off
		for l.off < len(l.src) && l.peek() != '"' {
			if l.peek() == '\n' {
				return Token{}, &LexError{p, "unterminated string"}
			}
			l.advance()
		}
		if l.off >= len(l.src) {
			return Token{}, &LexError{p, "unterminated string"}
		}
		text := l.src[start:l.off]
		l.advance() // closing quote
		return Token{Kind: STRING, Text: text, Pos: p}, nil
	}
	return l.lexOperator(p)
}

// lexNumber scans decimal and based literals: 42, 8'hFF, 4'b10_10, '0 etc.
// The raw text (with the base prefix but without a preceding size that was
// lexed separately) is kept; parsing to a value happens in the parser.
func (l *Lexer) lexNumber(p Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	// Optional base part: 'b / 'h / 'd / 'o with optional s for signed.
	if l.peek() == '\'' {
		save := l.off
		l.advance()
		if l.peek() == 's' || l.peek() == 'S' {
			l.advance()
		}
		b := l.peek()
		switch b {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.advance()
			digStart := l.off
			for l.off < len(l.src) && isNumCont(l.peek()) {
				l.advance()
			}
			if l.off == digStart {
				return Token{}, &LexError{p, "based literal has no digits"}
			}
		default:
			// Not a base indicator; treat the tick as a stray error.
			_ = save
			return Token{}, &LexError{p, fmt.Sprintf("invalid based literal %q", l.src[start:l.off+1])}
		}
	}
	text := l.src[start:l.off]
	return Token{Kind: NUMBER, Text: text, Pos: p}, nil
}

func (l *Lexer) lexOperator(p Pos) (Token, error) {
	c := l.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: k2, Pos: p}
		}
		return Token{Kind: k1, Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: p}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: p}, nil
	case '[':
		return Token{Kind: LBRACK, Pos: p}, nil
	case ']':
		return Token{Kind: RBRACK, Pos: p}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: p}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: p}, nil
	case ';':
		return Token{Kind: SEMI, Pos: p}, nil
	case ':':
		return Token{Kind: COLON, Pos: p}, nil
	case ',':
		return Token{Kind: COMMA, Pos: p}, nil
	case '.':
		return Token{Kind: DOT, Pos: p}, nil
	case '#':
		return Token{Kind: HASH, Pos: p}, nil
	case '@':
		return Token{Kind: AT, Pos: p}, nil
	case '?':
		return Token{Kind: QUEST, Pos: p}, nil
	case '+':
		return Token{Kind: PLUS, Pos: p}, nil
	case '-':
		return Token{Kind: MINUS, Pos: p}, nil
	case '*':
		return Token{Kind: STAR, Pos: p}, nil
	case '/':
		return Token{Kind: SLASH, Pos: p}, nil
	case '%':
		return Token{Kind: PERCENT, Pos: p}, nil
	case '=':
		if l.peek() == '=' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: EQ3, Pos: p}, nil
			}
			return Token{Kind: EQEQ, Pos: p}, nil
		}
		return Token{Kind: ASSIGNOP, Pos: p}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: NEQ3, Pos: p}, nil
			}
			return Token{Kind: NEQ, Pos: p}, nil
		}
		return Token{Kind: BANG, Pos: p}, nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			if l.peek() == '<' {
				l.advance() // <<< treated as <<
			}
			return Token{Kind: SHL, Pos: p}, nil
		}
		return two('=', LE, LT), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '>' {
				l.advance() // >>> treated as >>
			}
			return Token{Kind: SHR, Pos: p}, nil
		}
		return two('=', GE, GT), nil
	case '&':
		return two('&', AMPAMP, AMP), nil
	case '|':
		return two('|', PIPE2, PIPE), nil
	case '^':
		return two('~', XNOR, CARET), nil
	case '~':
		switch l.peek() {
		case '^':
			l.advance()
			return Token{Kind: XNOR, Pos: p}, nil
		case '&':
			l.advance()
			return Token{Kind: NAND, Pos: p}, nil
		case '|':
			l.advance()
			return Token{Kind: NOR, Pos: p}, nil
		}
		return Token{Kind: TILDE, Pos: p}, nil
	}
	return Token{}, &LexError{p, fmt.Sprintf("unexpected character %q", string(c))}
}

// Tokenize lexes the whole input, returning all tokens up to and
// including the final EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// stripUnderscores removes the digit separators permitted in literals.
func stripUnderscores(s string) string { return strings.ReplaceAll(s, "_", "") }
