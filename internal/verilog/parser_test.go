package verilog

import (
	"strings"
	"testing"
)

const sampleCounter = `
// Simple counter with synchronous load.
module counter #(parameter W = 8) (
  input wire clk,
  input wire rst,
  input wire ld,
  input wire [7:0] d,
  output reg [7:0] q
);
  wire [7:0] next = ld ? d : (q + 8'd1);
  always @(posedge clk or posedge rst) begin
    if (rst)
      q <= 8'd0;
    else
      q <= next;
  end
endmodule
`

func TestParseCounter(t *testing.T) {
	d, err := Parse(sampleCounter)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Modules) != 1 {
		t.Fatalf("got %d modules", len(d.Modules))
	}
	m := d.Modules[0]
	if m.Name != "counter" {
		t.Errorf("name = %q", m.Name)
	}
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports", len(m.Ports))
	}
	if m.Ports[4].Name != "q" || m.Ports[4].Dir != Output || !m.Ports[4].IsReg {
		t.Errorf("port q parsed wrong: %+v", m.Ports[4])
	}
	if len(m.Params) != 1 || m.Params[0].Name != "W" {
		t.Errorf("params parsed wrong: %+v", m.Params)
	}
	// Items: NetDecl(next), ContAssign(next=...), Always.
	if len(m.Items) != 3 {
		t.Fatalf("got %d items: %#v", len(m.Items), m.Items)
	}
	if _, ok := m.Items[0].(*NetDecl); !ok {
		t.Errorf("item 0 is %T, want *NetDecl", m.Items[0])
	}
	if _, ok := m.Items[1].(*ContAssign); !ok {
		t.Errorf("item 1 is %T, want *ContAssign", m.Items[1])
	}
	a, ok := m.Items[2].(*Always)
	if !ok {
		t.Fatalf("item 2 is %T, want *Always", m.Items[2])
	}
	if len(a.Events) != 2 || a.Events[0].Edge != EdgePos || a.Events[1].Edge != EdgePos {
		t.Errorf("sensitivity parsed wrong: %+v", a.Events)
	}
}

const sampleNonANSI = `
module adder (a, b, cin, sum, cout);
  input [3:0] a, b;
  input cin;
  output [3:0] sum;
  output cout;
  assign {cout, sum} = a + b + cin;
endmodule
`

func TestParseNonANSI(t *testing.T) {
	d, err := Parse(sampleNonANSI)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := d.Modules[0]
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports", len(m.Ports))
	}
	if m.Ports[0].Dir != Input || m.Ports[0].Range == nil {
		t.Errorf("port a: %+v", m.Ports[0])
	}
	if m.Ports[3].Dir != Output {
		t.Errorf("port sum direction: %v", m.Ports[3].Dir)
	}
	ca, ok := m.Items[0].(*ContAssign)
	if !ok {
		t.Fatalf("item 0 is %T", m.Items[0])
	}
	if _, ok := ca.LHS.(*Concat); !ok {
		t.Errorf("LHS is %T, want *Concat", ca.LHS)
	}
}

const sampleHier = `
module top (input wire clk, input wire [3:0] x, output wire [3:0] y);
  wire [3:0] t;
  leaf u0 (.clk(clk), .in(x), .out(t));
  leaf #(.INIT(3)) u1 (.clk(clk), .in(t), .out(y));
endmodule

module leaf #(parameter INIT = 0) (
  input wire clk,
  input wire [3:0] in,
  output reg [3:0] out
);
  always @(posedge clk) out <= in ^ 4'(0);
endmodule
`

func TestParseHierarchy(t *testing.T) {
	// Note: 4'(0) is not in our subset; replace to keep the sample legal.
	src := strings.Replace(sampleHier, "4'(0)", "4'h0", 1)
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Modules) != 2 {
		t.Fatalf("got %d modules", len(d.Modules))
	}
	top := d.FindModule("top")
	if top == nil {
		t.Fatal("top not found")
	}
	var insts []*Instance
	for _, it := range top.Items {
		if in, ok := it.(*Instance); ok {
			insts = append(insts, in)
		}
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instances", len(insts))
	}
	if insts[1].Module != "leaf" || insts[1].Name != "u1" || len(insts[1].Params) != 1 {
		t.Errorf("instance u1: %+v", insts[1])
	}
	if insts[1].Params[0].Port != "INIT" {
		t.Errorf("param override: %+v", insts[1].Params[0])
	}
}

func TestParseCaseAndFor(t *testing.T) {
	src := `
module fsm (input wire clk, input wire [1:0] s, output reg [3:0] o);
  integer i;
  reg [3:0] mem [0:3];
  always @(*) begin
    casez (s)
      2'b0?: o = 4'd1;
      2'b10: o = 4'd2;
      default: o = 4'd0;
    endcase
  end
  always @(posedge clk) begin
    for (i = 0; i < 4; i = i + 1)
      mem[i] <= o;
  end
endmodule
`
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := d.Modules[0]
	var alw []*Always
	for _, it := range m.Items {
		if a, ok := it.(*Always); ok {
			alw = append(alw, a)
		}
	}
	if len(alw) != 2 {
		t.Fatalf("got %d always blocks", len(alw))
	}
	blk := alw[0].Body.(*Block)
	cs, ok := blk.Stmts[0].(*Case)
	if !ok {
		t.Fatalf("stmt is %T", blk.Stmts[0])
	}
	if !cs.Z || len(cs.Items) != 3 {
		t.Errorf("case parsed wrong: z=%v items=%d", cs.Z, len(cs.Items))
	}
	if cs.Items[2].Exprs != nil {
		t.Errorf("default item has exprs")
	}
	pat := cs.Items[0].Exprs[0].(*Number)
	if pat.DontCare != 1 {
		t.Errorf("wildcard pattern DontCare = %#x", pat.DontCare)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c == d ? x | y & z : w")
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(e)
	want := "(((a + (b * c)) == d) ? (x | (y & z)) : w)"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseUnaryAndReduction(t *testing.T) {
	e, err := ParseExpr("&a | ~|b ^ !c")
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(e)
	want := "(&(a) | (~|(b) ^ !(c)))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseReplication(t *testing.T) {
	e, err := ParseExpr("{4{x}, y}")
	if err == nil {
		t.Fatalf("expected error for malformed replication, got %s", ExprString(e))
	}
	e, err = ParseExpr("{2{a, b}}")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := e.(*Repeat)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := r.X.(*Concat); !ok {
		t.Errorf("repeat body is %T", r.X)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module m",                                 // unexpected EOF
		"module m; wire w",                         // missing semicolon
		"module m; assign = 1; endmodule",          // missing lvalue
		"module m; generate endgenerate endmodule", // unsupported
		"module m (input wire a; endmodule",
		"module 42; endmodule",
		"module m; always @(posedge) q <= 1; endmodule",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseWireInit(t *testing.T) {
	d, err := Parse("module m (output wire o); wire a = 1'b1, b = 1'b0; assign o = a & b; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	m := d.Modules[0]
	// NetDecl + 2 ContAssign from initializers + 1 explicit assign.
	var assigns int
	for _, it := range m.Items {
		if _, ok := it.(*ContAssign); ok {
			assigns++
		}
	}
	if assigns != 3 {
		t.Errorf("got %d assigns, want 3", assigns)
	}
}

func TestEvalConst(t *testing.T) {
	env := Env{"W": 8, "D": 3}
	cases := []struct {
		src  string
		want int64
	}{
		{"W - 1", 7},
		{"2 * W + D", 19},
		{"1 << D", 8},
		{"W > 4 ? 100 : 200", 100},
		{"(W + D) % 5", 1},
		{"W == 8 && D != 0", 1},
		{"-D + 4", 1},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		v, err := EvalConst(e, env)
		if err != nil {
			t.Fatalf("EvalConst(%q): %v", c.src, err)
		}
		if v != c.want {
			t.Errorf("EvalConst(%q) = %d, want %d", c.src, v, c.want)
		}
	}
	// Non-constant identifier must error.
	e, _ := ParseExpr("unknown + 1")
	if _, err := EvalConst(e, env); err == nil {
		t.Error("expected error for unknown identifier")
	}
	e, _ = ParseExpr("1 / 0")
	if _, err := EvalConst(e, env); err == nil {
		t.Error("expected error for division by zero")
	}
}

func TestRangeWidth(t *testing.T) {
	r := &Range{MSB: Num(7), LSB: Num(0)}
	w, err := RangeWidth(r, nil)
	if err != nil || w != 8 {
		t.Errorf("RangeWidth = %d, %v", w, err)
	}
	w, err = RangeWidth(nil, nil)
	if err != nil || w != 1 {
		t.Errorf("RangeWidth(nil) = %d, %v", w, err)
	}
}
