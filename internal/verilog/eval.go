package verilog

import "fmt"

// Env maps parameter names to constant values for expression evaluation.
type Env map[string]int64

// EvalConst evaluates a constant expression (ranges, parameter values,
// replication counts, for-loop bounds) under the given environment.
func EvalConst(e Expr, env Env) (int64, error) {
	switch x := e.(type) {
	case *Number:
		if x.DontCare != 0 {
			return 0, fmt.Errorf("wildcard literal used in constant expression")
		}
		return int64(x.Val), nil
	case *Ident:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("identifier %q is not a constant", x.Name)
	case *Unary:
		v, err := EvalConst(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case MINUS:
			return -v, nil
		case BANG:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case TILDE:
			return ^v, nil
		}
		return 0, fmt.Errorf("operator %s not supported in constant expression", x.Op)
	case *Binary:
		a, err := EvalConst(x.X, env)
		if err != nil {
			return 0, err
		}
		b, err := EvalConst(x.Y, env)
		if err != nil {
			return 0, err
		}
		bool2int := func(c bool) int64 {
			if c {
				return 1
			}
			return 0
		}
		switch x.Op {
		case PLUS:
			return a + b, nil
		case MINUS:
			return a - b, nil
		case STAR:
			return a * b, nil
		case SLASH:
			if b == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return a / b, nil
		case PERCENT:
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero in constant expression")
			}
			return a % b, nil
		case SHL:
			return a << uint(b), nil
		case SHR:
			return int64(uint64(a) >> uint(b)), nil
		case LT:
			return bool2int(a < b), nil
		case LE:
			return bool2int(a <= b), nil
		case GT:
			return bool2int(a > b), nil
		case GE:
			return bool2int(a >= b), nil
		case EQEQ:
			return bool2int(a == b), nil
		case NEQ:
			return bool2int(a != b), nil
		case AMPAMP:
			return bool2int(a != 0 && b != 0), nil
		case PIPE2:
			return bool2int(a != 0 || b != 0), nil
		case AMP:
			return a & b, nil
		case PIPE:
			return a | b, nil
		case CARET:
			return a ^ b, nil
		case XNOR:
			return ^(a ^ b), nil
		}
		return 0, fmt.Errorf("operator %s not supported in constant expression", x.Op)
	case *Ternary:
		c, err := EvalConst(x.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalConst(x.Then, env)
		}
		return EvalConst(x.Else, env)
	}
	return 0, fmt.Errorf("expression %T not supported in constant expression", e)
}

// RangeWidth evaluates a range to its bit width (|MSB-LSB|+1).
// A nil range has width 1.
func RangeWidth(r *Range, env Env) (int, error) {
	if r == nil {
		return 1, nil
	}
	msb, err := EvalConst(r.MSB, env)
	if err != nil {
		return 0, err
	}
	lsb, err := EvalConst(r.LSB, env)
	if err != nil {
		return 0, err
	}
	w := msb - lsb
	if w < 0 {
		w = -w
	}
	return int(w) + 1, nil
}

// RangeBounds evaluates a range to (msb, lsb).
func RangeBounds(r *Range, env Env) (msb, lsb int64, err error) {
	if r == nil {
		return 0, 0, nil
	}
	msb, err = EvalConst(r.MSB, env)
	if err != nil {
		return 0, 0, err
	}
	lsb, err = EvalConst(r.LSB, env)
	return msb, lsb, err
}
