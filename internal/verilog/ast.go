package verilog

// Design is a parsed collection of Verilog modules (one or more source
// files concatenated).
type Design struct {
	Modules []*Module
}

// FindModule returns the module with the given name, or nil.
func (d *Design) FindModule(name string) *Module {
	for _, m := range d.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Module is a single module declaration.
type Module struct {
	Name   string
	Ports  []*Port  // in header order
	Params []*Param // parameters and localparams, in source order
	Items  []Item   // declarations, assigns, always blocks, instances
	Pos    Pos
}

// Dir is a port direction.
type Dir int

// Port directions.
const (
	Input Dir = iota
	Output
	Inout
)

func (d Dir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case Inout:
		return "inout"
	}
	return "?"
}

// Port is a module port. Range is nil for scalar ports.
type Port struct {
	Name  string
	Dir   Dir
	Range *Range
	IsReg bool
	Pos   Pos
}

// Range is a [MSB:LSB] vector range with constant expressions.
type Range struct {
	MSB Expr
	LSB Expr
}

// Param is a parameter or localparam declaration.
type Param struct {
	Name    string
	Value   Expr
	IsLocal bool
}

// Item is a module body item.
type Item interface{ itemNode() }

// NetKind distinguishes wire from reg declarations.
type NetKind int

// Net kinds.
const (
	Wire NetKind = iota
	Reg
)

func (k NetKind) String() string {
	if k == Reg {
		return "reg"
	}
	return "wire"
}

// DeclName is one declarator in a net declaration; Array is non-nil for
// 1-D memories (reg [7:0] mem [0:15]).
type DeclName struct {
	Name  string
	Array *Range
}

// NetDecl declares one or more wires or regs sharing a vector range.
type NetDecl struct {
	Kind  NetKind
	Range *Range
	Names []DeclName
	Pos   Pos
}

// ContAssign is a continuous assignment (assign LHS = RHS;).
type ContAssign struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// Edge is a sensitivity edge qualifier.
type Edge int

// Edge qualifiers.
const (
	EdgeNone Edge = iota // level (plain signal in sensitivity list)
	EdgePos
	EdgeNeg
)

// Event is one entry of an always sensitivity list.
type Event struct {
	Edge Edge
	Sig  Expr
}

// Always is an always (or initial) block. Star is true for @(*) / @*.
// Initial marks an initial block, which the synthesizer rejects.
type Always struct {
	Star    bool
	Initial bool
	Events  []Event
	Body    Stmt
	Pos     Pos
}

// Connection is a named or positional port/parameter connection.
// Port is empty for positional connections. Expr may be nil for
// explicitly unconnected ports (.p()).
type Connection struct {
	Port string
	Expr Expr
}

// Instance instantiates a module.
type Instance struct {
	Module string
	Name   string
	Params []Connection // parameter overrides (#(...)), possibly positional
	Conns  []Connection
	Pos    Pos
}

func (*NetDecl) itemNode()    {}
func (*ContAssign) itemNode() {}
func (*Always) itemNode()     {}
func (*Instance) itemNode()   {}

// Stmt is a behavioural statement.
type Stmt interface{ stmtNode() }

// Block is a begin/end statement group.
type Block struct {
	Label string
	Stmts []Stmt
}

// If is an if/else statement; Else may be nil.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// Case is a case or casez statement. An item with nil Exprs is the
// default item.
type Case struct {
	Subject Expr
	Z       bool // casez (and casex, treated as casez)
	Items   []CaseItem
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	Exprs []Expr // nil for default
	Body  Stmt
}

// Assign is a blocking (=) or non-blocking (<=) procedural assignment.
type Assign struct {
	LHS      Expr
	RHS      Expr
	Blocking bool
}

// For is a for loop with constant bounds (unrolled during synthesis).
type For struct {
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
}

// Null is an empty statement (bare semicolon).
type Null struct{}

func (*Block) stmtNode()  {}
func (*If) stmtNode()     {}
func (*Case) stmtNode()   {}
func (*Assign) stmtNode() {}
func (*For) stmtNode()    {}
func (*Null) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident is a reference to a named net, reg, parameter, or genvar.
type Ident struct {
	Name string
}

// Number is a literal. For based literals with x/z/? digits (used in
// casez patterns), DontCare has 1-bits at the wildcard positions.
// Sized reports whether an explicit width was given; unsized literals
// get Width 32 by convention.
type Number struct {
	Width    int
	Val      uint64
	DontCare uint64
	Sized    bool
	Base     byte // 'b', 'o', 'd', 'h' or 0 for plain decimal
}

// Unary is a unary operator application: ! ~ & ~& | ~| ^ ~^ - +.
type Unary struct {
	Op Kind
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op Kind
	X  Expr
	Y  Expr
}

// Ternary is the conditional operator cond ? a : b.
type Ternary struct {
	Cond Expr
	Then Expr
	Else Expr
}

// Concat is a concatenation {a, b, c}.
type Concat struct {
	Parts []Expr
}

// Repeat is a replication {N{x}}.
type Repeat struct {
	Count Expr
	X     Expr
}

// Index is a bit-select or memory element select x[i].
type Index struct {
	X   Expr
	Idx Expr
}

// Slice is a constant part-select x[msb:lsb].
type Slice struct {
	X   Expr
	MSB Expr
	LSB Expr
}

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Concat) exprNode()  {}
func (*Repeat) exprNode()  {}
func (*Index) exprNode()   {}
func (*Slice) exprNode()   {}

// Num returns an unsized decimal literal expression.
func Num(v uint64) *Number { return &Number{Width: 32, Val: v} }

// SizedNum returns a sized literal expression of the given width.
func SizedNum(width int, v uint64) *Number {
	return &Number{Width: width, Val: v, Sized: true, Base: 'h'}
}

// ID returns an identifier expression.
func ID(name string) *Ident { return &Ident{Name: name} }
