package verilog

import (
	"fmt"
	"strings"
)

// Print regenerates Verilog source for a whole design.
func Print(d *Design) string {
	var b strings.Builder
	for i, m := range d.Modules {
		if i > 0 {
			b.WriteByte('\n')
		}
		PrintModule(&b, m)
	}
	return b.String()
}

// PrintModule writes the Verilog text of one module to b.
func PrintModule(b *strings.Builder, m *Module) {
	fmt.Fprintf(b, "module %s", m.Name)
	if len(m.Ports) > 0 {
		b.WriteString(" (\n")
		for i, p := range m.Ports {
			b.WriteString("  ")
			b.WriteString(p.Dir.String())
			if p.IsReg {
				b.WriteString(" reg")
			}
			if p.Range != nil {
				fmt.Fprintf(b, " [%s:%s]", ExprString(p.Range.MSB), ExprString(p.Range.LSB))
			}
			b.WriteByte(' ')
			b.WriteString(p.Name)
			if i < len(m.Ports)-1 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
		b.WriteString(")")
	}
	b.WriteString(";\n")
	for _, p := range m.Params {
		kw := "parameter"
		if p.IsLocal {
			kw = "localparam"
		}
		fmt.Fprintf(b, "  %s %s = %s;\n", kw, p.Name, ExprString(p.Value))
	}
	for _, it := range m.Items {
		printItem(b, it, "  ")
	}
	b.WriteString("endmodule\n")
}

func printItem(b *strings.Builder, it Item, ind string) {
	switch x := it.(type) {
	case *NetDecl:
		b.WriteString(ind)
		b.WriteString(x.Kind.String())
		if x.Range != nil {
			fmt.Fprintf(b, " [%s:%s]", ExprString(x.Range.MSB), ExprString(x.Range.LSB))
		}
		b.WriteByte(' ')
		for i, n := range x.Names {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n.Name)
			if n.Array != nil {
				fmt.Fprintf(b, " [%s:%s]", ExprString(n.Array.MSB), ExprString(n.Array.LSB))
			}
		}
		b.WriteString(";\n")
	case *ContAssign:
		fmt.Fprintf(b, "%sassign %s = %s;\n", ind, ExprString(x.LHS), ExprString(x.RHS))
	case *Always:
		b.WriteString(ind)
		if x.Initial {
			b.WriteString("initial")
		} else if x.Star {
			b.WriteString("always @(*)")
		} else {
			b.WriteString("always @(")
			for i, ev := range x.Events {
				if i > 0 {
					b.WriteString(" or ")
				}
				switch ev.Edge {
				case EdgePos:
					b.WriteString("posedge ")
				case EdgeNeg:
					b.WriteString("negedge ")
				}
				b.WriteString(ExprString(ev.Sig))
			}
			b.WriteString(")")
		}
		b.WriteByte(' ')
		printStmt(b, x.Body, ind)
	case *Instance:
		b.WriteString(ind)
		b.WriteString(x.Module)
		if len(x.Params) > 0 {
			b.WriteString(" #(")
			printConns(b, x.Params)
			b.WriteString(")")
		}
		fmt.Fprintf(b, " %s (", x.Name)
		printConns(b, x.Conns)
		b.WriteString(");\n")
	}
}

func printConns(b *strings.Builder, conns []Connection) {
	for i, c := range conns {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Port != "" {
			fmt.Fprintf(b, ".%s(", c.Port)
			if c.Expr != nil {
				b.WriteString(ExprString(c.Expr))
			}
			b.WriteString(")")
		} else if c.Expr != nil {
			b.WriteString(ExprString(c.Expr))
		}
	}
}

// printStmt writes stmt at the current position; ind is the indentation
// of the enclosing construct.
func printStmt(b *strings.Builder, s Stmt, ind string) {
	switch x := s.(type) {
	case *Null:
		b.WriteString(";\n")
	case *Block:
		b.WriteString("begin")
		if x.Label != "" {
			fmt.Fprintf(b, " : %s", x.Label)
		}
		b.WriteByte('\n')
		for _, st := range x.Stmts {
			b.WriteString(ind + "  ")
			printStmt(b, st, ind+"  ")
		}
		b.WriteString(ind + "end\n")
	case *If:
		fmt.Fprintf(b, "if (%s) ", ExprString(x.Cond))
		printStmt(b, x.Then, ind)
		if x.Else != nil {
			b.WriteString(ind + "else ")
			printStmt(b, x.Else, ind)
		}
	case *Case:
		kw := "case"
		if x.Z {
			kw = "casez"
		}
		fmt.Fprintf(b, "%s (%s)\n", kw, ExprString(x.Subject))
		for _, it := range x.Items {
			b.WriteString(ind + "  ")
			if it.Exprs == nil {
				b.WriteString("default")
			} else {
				for i, e := range it.Exprs {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(ExprString(e))
				}
			}
			b.WriteString(": ")
			printStmt(b, it.Body, ind+"  ")
		}
		b.WriteString(ind + "endcase\n")
	case *Assign:
		op := "<="
		if x.Blocking {
			op = "="
		}
		fmt.Fprintf(b, "%s %s %s;\n", ExprString(x.LHS), op, ExprString(x.RHS))
	case *For:
		fmt.Fprintf(b, "for (%s = %s; %s; %s = %s) ",
			ExprString(x.Init.LHS), ExprString(x.Init.RHS),
			ExprString(x.Cond),
			ExprString(x.Step.LHS), ExprString(x.Step.RHS))
		printStmt(b, x.Body, ind)
	}
}

// ExprString renders an expression as Verilog text. Nested operator
// applications are fully parenthesized, which keeps the output
// unambiguous and round-trippable.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Number:
		return numberString(x)
	case *Unary:
		return x.Op.String() + "(" + ExprString(x.X) + ")"
	case *Binary:
		return "(" + ExprString(x.X) + " " + x.Op.String() + " " + ExprString(x.Y) + ")"
	case *Ternary:
		return "(" + ExprString(x.Cond) + " ? " + ExprString(x.Then) + " : " + ExprString(x.Else) + ")"
	case *Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = ExprString(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repeat:
		return "{" + ExprString(x.Count) + "{" + ExprString(x.X) + "}}"
	case *Index:
		return ExprString(x.X) + "[" + ExprString(x.Idx) + "]"
	case *Slice:
		return ExprString(x.X) + "[" + ExprString(x.MSB) + ":" + ExprString(x.LSB) + "]"
	}
	return fmt.Sprintf("/*?%T*/", e)
}

func numberString(n *Number) string {
	if !n.Sized && n.Base == 0 {
		return fmt.Sprintf("%d", n.Val)
	}
	if n.DontCare != 0 {
		// Render wildcard bits in binary.
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d'b", n.Width)
		printed := false
		for i := n.Width - 1; i >= 0; i-- {
			var bit uint64
			var dc uint64
			if i < 64 {
				bit = (n.Val >> uint(i)) & 1
				dc = (n.DontCare >> uint(i)) & 1
			}
			if dc != 0 {
				sb.WriteByte('?')
				printed = true
			} else if bit != 0 {
				sb.WriteByte('1')
				printed = true
			} else {
				if !printed && i > 0 {
					sb.WriteByte('0') // keep full width for clarity
					printed = true
					continue
				}
				sb.WriteByte('0')
			}
		}
		return sb.String()
	}
	switch n.Base {
	case 'b':
		return fmt.Sprintf("%d'b%b", n.Width, n.Val)
	case 'o':
		return fmt.Sprintf("%d'o%o", n.Width, n.Val)
	case 'd':
		return fmt.Sprintf("%d'd%d", n.Width, n.Val)
	default:
		return fmt.Sprintf("%d'h%x", n.Width, n.Val)
	}
}
