// Package verilog implements a lexer, parser, abstract syntax tree,
// constant evaluator, and printer for the synthesizable Verilog-2001
// subset used by the ALICE redaction flow.
//
// The subset covers: module declarations (ANSI and non-ANSI port styles),
// parameters and localparams, wire/reg declarations (including 1-D memory
// arrays), continuous assignments, always blocks (combinational and edge
// triggered), if/else, case/casez, blocking and non-blocking assignments,
// module instantiation with named or positional connections and parameter
// overrides, and the usual expression operators (logical, bitwise,
// reduction, arithmetic, shifts, comparisons, concatenation, replication,
// bit- and part-selects, conditional).
//
// This replaces the PyVerilog dependency of the original ALICE prototype.
package verilog

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the punctuation block.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }
	SEMI   // ;
	COLON  // :
	COMMA  // ,
	DOT    // .
	HASH   // #
	AT     // @
	QUEST  // ?

	ASSIGNOP // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %

	LT   // <
	LE   // <= (also non-blocking assign, disambiguated by parser)
	GT   // >
	GE   // >=
	EQEQ // ==
	NEQ  // !=
	EQ3  // === (treated as ==)
	NEQ3 // !== (treated as !=)

	AMP    // &
	AMPAMP // &&
	PIPE   // |
	PIPE2  // ||
	CARET  // ^
	XNOR   // ~^ or ^~
	BANG   // !
	TILDE  // ~
	NAND   // ~&
	NOR    // ~|

	SHL // <<
	SHR // >>

	// Keywords.
	KWMODULE
	KWENDMODULE
	KWINPUT
	KWOUTPUT
	KWINOUT
	KWWIRE
	KWREG
	KWASSIGN
	KWALWAYS
	KWINITIAL
	KWBEGIN
	KWEND
	KWIF
	KWELSE
	KWCASE
	KWCASEZ
	KWCASEX
	KWENDCASE
	KWDEFAULT
	KWPOSEDGE
	KWNEGEDGE
	KWOR // event "or"
	KWPARAMETER
	KWLOCALPARAM
	KWINTEGER
	KWFOR
	KWGENVAR
	KWGENERATE
	KWENDGENERATE
	KWFUNCTION
	KWENDFUNCTION
	KWSIGNED
)

var keywords = map[string]Kind{
	"module":      KWMODULE,
	"endmodule":   KWENDMODULE,
	"input":       KWINPUT,
	"output":      KWOUTPUT,
	"inout":       KWINOUT,
	"wire":        KWWIRE,
	"reg":         KWREG,
	"assign":      KWASSIGN,
	"always":      KWALWAYS,
	"initial":     KWINITIAL,
	"begin":       KWBEGIN,
	"end":         KWEND,
	"if":          KWIF,
	"else":        KWELSE,
	"case":        KWCASE,
	"casez":       KWCASEZ,
	"casex":       KWCASEX,
	"endcase":     KWENDCASE,
	"default":     KWDEFAULT,
	"posedge":     KWPOSEDGE,
	"negedge":     KWNEGEDGE,
	"or":          KWOR,
	"parameter":   KWPARAMETER,
	"localparam":  KWLOCALPARAM,
	"integer":     KWINTEGER,
	"for":         KWFOR,
	"genvar":      KWGENVAR,
	"generate":    KWGENERATE,
	"endgenerate": KWENDGENERATE,
	"function":    KWFUNCTION,
	"endfunction": KWENDFUNCTION,
	"signed":      KWSIGNED,
}

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number", STRING: "string",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{",
	RBRACE: "}", SEMI: ";", COLON: ":", COMMA: ",", DOT: ".", HASH: "#",
	AT: "@", QUEST: "?", ASSIGNOP: "=", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", PERCENT: "%", LT: "<", LE: "<=", GT: ">", GE: ">=",
	EQEQ: "==", NEQ: "!=", EQ3: "===", NEQ3: "!==", AMP: "&", AMPAMP: "&&",
	PIPE: "|", PIPE2: "||", CARET: "^", XNOR: "~^", BANG: "!", TILDE: "~",
	NAND: "~&", NOR: "~|", SHL: "<<", SHR: ">>",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	for s, kk := range keywords {
		if kk == k {
			return s
		}
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == IDENT || t.Kind == NUMBER || t.Kind == STRING {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	}
	return t.Kind.String()
}
