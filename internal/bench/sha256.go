package bench

// SHA256 rebuilds the CEP SHA256 benchmark: a compression wrapper with
// the full 512-bit block and 256-bit state interface (774 pins), a
// message-schedule memory (546 pins), and a narrow round core (38 pins)
// that is the only redaction candidate under both configurations, as in
// the paper.
func SHA256() string {
	return `
// Reconstructed CEP SHA256 benchmark (see package bench documentation).
module sha256 (
  input wire clk,
  input wire rst,
  input wire init_i,
  input wire next_i,
  input wire [511:0] block_i,
  output wire [255:0] digest,
  output wire ready_o
);
  wire [31:0] w;
  wire [127:0] comp_state;
  wire comp_valid, comp_ready;
  wire [15:0] round_h;
  wire round_done, round_busy;

  sha_w_mem u_wmem (
    .clk(clk), .rst(rst), .block(block_i), .w(w)
  );
  sha_compress u_comp (
    .clk(clk), .rst(rst), .init_c(init_i), .next_c(next_i),
    .block(block_i), .state_in({96'd0, w}),
    .state_out(comp_state), .valid(comp_valid), .ready(comp_ready)
  );
  sha_round u_round (
    .clk(clk), .rst(rst), .en(next_i), .ld(init_i),
    .wd(w[15:0]), .hout(round_h), .done(round_done), .busy(round_busy)
  );
  assign digest = {comp_state, comp_state} ^ {16{round_h}};
  assign ready_o = comp_valid & round_done & ~round_busy & comp_ready;
endmodule

// sha_round: iterative round core (38 pins) -- the redaction candidate.
// Holds a 256-bit working state and performs one compression round per
// cycle with internal round constants.
module sha_round (
  input wire clk,
  input wire rst,
  input wire en,
  input wire ld,
  input wire [15:0] wd,
  output wire [15:0] hout,
  output reg done,
  output reg busy
);
  reg [15:0] a, b, c, d, e, f, g, h;
  reg [5:0] t;
  reg [15:0] kreg;
  wire [15:0] s1 = {e[5:0], e[15:6]} ^ {e[10:0], e[15:11]} ^ {e[12:0], e[15:13]};
  wire [15:0] ch = (e & f) ^ (~e & g);
  wire [15:0] t1 = h + s1 + ch + kreg + wd;
  wire [15:0] s0 = {a[1:0], a[15:2]} ^ {a[12:0], a[15:13]} ^ {a[5:0], a[15:6]};
  wire [15:0] maj = (a & b) ^ (a & c) ^ (b & c);
  wire [15:0] t2 = s0 + maj;
  always @(*) begin
    case (t[3:0])
      4'd0: kreg = 16'h2f98;
      4'd1: kreg = 16'h4491;
      4'd2: kreg = 16'hfbcf;
      4'd3: kreg = 16'hdba5;
      4'd4: kreg = 16'hc25b;
      4'd5: kreg = 16'h11f1;
      4'd6: kreg = 16'h82a4;
      4'd7: kreg = 16'h5ed5;
      4'd8: kreg = 16'haa98;
      4'd9: kreg = 16'h5b01;
      4'd10: kreg = 16'h85be;
      4'd11: kreg = 16'h7dc3;
      4'd12: kreg = 16'h5d74;
      4'd13: kreg = 16'hb1fe;
      4'd14: kreg = 16'h06a7;
      default: kreg = 16'hf174;
    endcase
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      a <= 16'he667;
      b <= 16'hae85;
      c <= 16'hf372;
      d <= 16'hf53a;
      e <= 16'h527f;
      f <= 16'h688c;
      g <= 16'hd9ab;
      h <= 16'hcd19;
      t <= 6'd0;
      done <= 1'b0;
      busy <= 1'b0;
    end else begin
      if (ld) begin
        t <= 6'd0;
        busy <= 1'b1;
        done <= 1'b0;
      end else if (en || busy) begin
        h <= g;
        g <= f;
        f <= e;
        e <= d + t1;
        d <= c;
        c <= b;
        b <= a;
        a <= t1 + t2;
        t <= t + 6'd1;
        if (t == 6'd63) begin
          busy <= 1'b0;
          done <= 1'b1;
        end
      end
    end
  end
  assign hout = a ^ {e[7:0], e[15:8]};
endmodule

// sha_w_mem: message schedule (546 pins).
module sha_w_mem (
  input wire clk,
  input wire rst,
  input wire [511:0] block,
  output reg [31:0] w
);
  reg [3:0] idx;
  reg [31:0] w0;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      idx <= 4'd0;
      w0 <= 32'd0;
      w <= 32'd0;
    end else begin
      idx <= idx + 4'd1;
      w0 <= block[31:0] ^ {block[511:496], block[47:32]};
      w <= w0 + {28'd0, idx};
    end
  end
endmodule

// sha_compress: block-level compression wrapper (774 pins: 4 controls
// + 512-bit block + two 128-bit state buses + valid + ready).
module sha_compress (
  input wire clk,
  input wire rst,
  input wire init_c,
  input wire next_c,
  input wire [511:0] block,
  input wire [127:0] state_in,
  output reg [127:0] state_out,
  output reg valid,
  output wire ready
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state_out <= 128'd0;
      valid <= 1'b0;
    end else begin
      if (init_c) begin
        state_out <= state_in;
        valid <= 1'b0;
      end else if (next_c) begin
        state_out <= state_out + (state_in ^ block[127:0]) + block[255:128];
        valid <= 1'b1;
      end
    end
  end
  assign ready = ~valid | init_c;
endmodule
`
}
