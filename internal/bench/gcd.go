package bench

// GCD rebuilds the OpenROAD gcd benchmark as a subtractive Euclid
// datapath: controller, comparator, subtractor, operand registers and
// muxes, a shifter, an output register, a done flag, and an input
// synchronizer. Table 1: 10 modules, 11 instances (the 2:1 mux is
// instantiated twice), I/O in [6, 68]. The 68-pin comparator exceeds
// cfg1's 64-pin limit (|R| = 9) but passes under cfg2 (|R| = 10).
func GCD() string {
	return `
// Reconstructed OpenROAD gcd benchmark (see package bench doc).
module gcd (
  input wire clk,
  input wire rst,
  input wire start,
  input wire [15:0] a_in,
  input wire [15:0] b_in,
  output wire [15:0] result,
  output wire done,
  output wire busy
);
  wire start_s, start_pulse, sync_strobe;
  wire eq, lt, gt;
  wire ld_a, ld_b, sel, done_set, idle, phase;
  wire [15:0] a_q, b_q;
  wire [15:0] mux_a_y, mux_b_y;
  wire [15:0] diff;
  wire borrow;
  wire [15:0] shifted;
  wire done_pulse;

  gcd_sync u_sync (
    .clk(clk), .rst(rst), .d(start), .q(start_s), .qb(start_pulse),
    .en(1'b1), .strobe(sync_strobe), .dly(1'b0)
  );
  gcd_ctrl u_ctrl (
    .clk(clk), .rst(rst), .start(start_s), .eq(eq), .lt(lt),
    .ld_a(ld_a), .ld_b(ld_b), .sel(sel), .done_set(done_set),
    .busy(busy), .idle(idle), .phase(phase)
  );
  gcd_cmp u_cmp (
    .a({16'd0, a_q}), .b({16'd0, b_q}), .eq(eq), .lt(lt), .gt(gt),
    .en(busy)
  );
  gcd_mux2 u_mux_a (
    .a(a_in), .b(diff), .sel(idle), .y(mux_a_y), .en(1'b1)
  );
  gcd_mux2 u_mux_b (
    .a(b_in), .b(diff), .sel(idle), .y(mux_b_y), .en(1'b1)
  );
  gcd_rega u_rega (
    .clk(clk), .rst(rst), .ld(ld_a), .d(mux_a_y), .q(a_q)
  );
  gcd_regb u_regb (
    .clk(clk), .rst(rst), .ld(ld_b), .d(mux_b_y), .q(b_q)
  );
  gcd_sub u_sub (
    .x(sel ? b_q : a_q), .y(sel ? a_q : b_q), .d(diff), .borrow(borrow)
  );
  gcd_lsh u_lsh (
    .x(a_q), .y(shifted), .dir(1'b0)
  );
  gcd_done u_done (
    .clk(clk), .rst(rst), .set(done_set), .clr(start_s), .done(done),
    .pulse(done_pulse)
  );
  gcd_outreg u_out (
    .clk(clk), .ld(done_set | done_pulse), .d(shifted), .q(result)
  );
endmodule

// gcd_sync: input synchronizer (8 pins).
module gcd_sync (
  input wire clk,
  input wire rst,
  input wire d,
  input wire en,
  input wire dly,
  output reg q,
  output reg qb,
  output reg strobe
);
  reg m;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      m <= 1'b0;
      q <= 1'b0;
      qb <= 1'b0;
      strobe <= 1'b0;
    end else if (en) begin
      m <= d ^ dly;
      q <= m;
      qb <= q & ~m;
      strobe <= q ^ m;
    end
  end
endmodule

// gcd_ctrl: FSM (12 pins).
module gcd_ctrl (
  input wire clk,
  input wire rst,
  input wire start,
  input wire eq,
  input wire lt,
  output reg ld_a,
  output reg ld_b,
  output wire sel,
  output reg done_set,
  output wire busy,
  output wire idle,
  output wire phase
);
  reg [1:0] state;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
    end else begin
      case (state)
        2'd0: state <= start ? 2'd1 : 2'd0;
        2'd1: state <= 2'd2;
        2'd2: state <= eq ? 2'd3 : 2'd2;
        default: state <= start ? 2'd3 : 2'd0;
      endcase
    end
  end
  always @(*) begin
    ld_a = 1'b0;
    ld_b = 1'b0;
    done_set = 1'b0;
    if (state == 2'd1) begin
      ld_a = 1'b1;
      ld_b = 1'b1;
    end else if (state == 2'd2) begin
      if (eq) begin
        done_set = 1'b1;
      end else if (lt) begin
        ld_b = 1'b1;
      end else begin
        ld_a = 1'b1;
      end
    end
  end
  assign sel = lt;
  assign busy = state == 2'd2;
  assign idle = state != 2'd2;
  assign phase = state[0];
endmodule

// gcd_cmp: 32-bit comparator (68 pins; the cfg1-excluded module).
module gcd_cmp (
  input wire [31:0] a,
  input wire [31:0] b,
  input wire en,
  output wire eq,
  output wire lt,
  output wire gt
);
  assign eq = en & (a == b);
  assign lt = en & (a < b);
  assign gt = en & (a > b);
endmodule

// gcd_sub: 16-bit subtractor (49 pins).
module gcd_sub (
  input wire [15:0] x,
  input wire [15:0] y,
  output wire [15:0] d,
  output wire borrow
);
  assign {borrow, d} = {1'b0, x} - {1'b0, y};
endmodule

// gcd_mux2: 2:1 operand mux (50 pins), instantiated twice.
module gcd_mux2 (
  input wire [15:0] a,
  input wire [15:0] b,
  input wire sel,
  input wire en,
  output wire [15:0] y
);
  assign y = en ? (sel ? a : b) : 16'd0;
endmodule

// gcd_rega: operand register A (35 pins).
module gcd_rega (
  input wire clk,
  input wire rst,
  input wire ld,
  input wire [15:0] d,
  output reg [15:0] q
);
  always @(posedge clk or posedge rst) begin
    if (rst)
      q <= 16'd0;
    else if (ld)
      q <= d;
  end
endmodule

// gcd_regb: operand register B (35 pins).
module gcd_regb (
  input wire clk,
  input wire rst,
  input wire ld,
  input wire [15:0] d,
  output reg [15:0] q
);
  always @(posedge clk or posedge rst) begin
    if (rst)
      q <= 16'hFFFF;
    else if (ld)
      q <= d;
  end
endmodule

// gcd_lsh: result shifter (33 pins).
module gcd_lsh (
  input wire [15:0] x,
  input wire dir,
  output wire [15:0] y
);
  assign y = dir ? {x[14:0], 1'b0} : x;
endmodule

// gcd_done: done flag (6 pins; the smallest module of the suite).
module gcd_done (
  input wire clk,
  input wire rst,
  input wire set,
  input wire clr,
  output reg done,
  output reg pulse
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      done <= 1'b0;
      pulse <= 1'b0;
    end else begin
      pulse <= set & ~done;
      if (set)
        done <= 1'b1;
      else if (clr)
        done <= 1'b0;
    end
  end
endmodule

// gcd_outreg: result register (34 pins).
module gcd_outreg (
  input wire clk,
  input wire ld,
  input wire [15:0] d,
  output reg [15:0] q
);
  always @(posedge clk) begin
    if (ld)
      q <= d;
  end
endmodule
`
}
