package bench

import (
	"context"
	"testing"

	"alice/internal/opt"
	"alice/internal/rtl"
	"alice/internal/synth"
	"alice/internal/techmap"
	"alice/internal/verilog"
)

// TestTable1Characteristics checks every reconstructed benchmark against
// the paper's Table 1: module count, instance count, and I/O pin range.
func TestTable1Characteristics(t *testing.T) {
	for _, b := range All() {
		ast, err := verilog.Parse(b.Source())
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		d, err := rtl.Elaborate(ast, "")
		if err != nil {
			t.Fatalf("%s: elaborate: %v", b.Name, err)
		}
		c := rtl.Characterize(d)
		if c.Modules != b.PaperModules {
			t.Errorf("%s: modules = %d, paper says %d", b.Name, c.Modules, b.PaperModules)
		}
		if c.Instances != b.PaperInstances {
			t.Errorf("%s: instances = %d, paper says %d", b.Name, c.Instances, b.PaperInstances)
		}
		if c.MinPins != b.PaperMinPins {
			t.Errorf("%s: min pins = %d, paper says %d", b.Name, c.MinPins, b.PaperMinPins)
		}
		if c.MaxPins != b.PaperMaxPins {
			t.Errorf("%s: max pins = %d, paper says %d", b.Name, c.MaxPins, b.PaperMaxPins)
		}
	}
}

// TestBenchmarksSynthesize ensures every design survives the full
// synthesis pipeline down to a mapped LUT network.
func TestBenchmarksSynthesize(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ast, err := verilog.Parse(b.Source())
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			d, err := rtl.Elaborate(ast, "")
			if err != nil {
				t.Fatalf("elaborate: %v", err)
			}
			res, err := synth.Synthesize(d)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			n := opt.Optimize(res.Netlist)
			ln, err := techmap.Map(n)
			if err != nil {
				t.Fatalf("map: %v", err)
			}
			if ln.NumLUTs() == 0 {
				t.Error("no LUTs after mapping")
			}
			t.Logf("%s: %d gates, %d LUTs, %d FFs, depth %d",
				b.Name, n.NumGates(), ln.NumLUTs(), ln.NumFFs(), ln.Depth())
		})
	}
}

// TestSelectedOutputsExist ensures the configured protected outputs are
// real ports of each top module.
func TestSelectedOutputsExist(t *testing.T) {
	for _, b := range All() {
		ast, err := verilog.Parse(b.Source())
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		d, err := rtl.Elaborate(ast, "")
		if err != nil {
			t.Fatalf("%s: elaborate: %v", b.Name, err)
		}
		df, err := rtl.NewDataflow(context.Background(), d)
		if err != nil {
			t.Fatalf("%s: dataflow: %v", b.Name, err)
		}
		for _, o := range b.SelectedOutputs {
			if _, err := df.InstancesAffecting(o); err != nil {
				t.Errorf("%s: selected output %s: %v", b.Name, o, err)
			}
		}
	}
}

// TestGCDComputesGCD sanity-checks the rebuilt gcd datapath on a few
// known values (Euclid by subtraction).
func TestGCDComputesGCD(t *testing.T) {
	ast, err := verilog.Parse(GCD())
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(ast, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d)
	if err != nil {
		t.Fatal(err)
	}
	sim := synth.NewVectorSim(res)
	gcdOf := func(a, b uint64) uint64 {
		sim.Reset()
		sim.Set("start", 0)
		sim.Set("a_in", a)
		sim.Set("b_in", b)
		sim.Step()
		sim.Set("start", 1)
		sim.Step()
		sim.Step()
		sim.Set("start", 0)
		for i := 0; i < 200; i++ {
			sim.Step()
			sim.Eval()
			if sim.Out("done") == 1 {
				// One extra cycle for the output register.
				sim.Step()
				sim.Eval()
				return sim.Out("result")
			}
		}
		t.Fatalf("gcd(%d,%d) did not finish", a, b)
		return 0
	}
	cases := [][3]uint64{{12, 18, 6}, {35, 14, 7}, {9, 9, 9}, {17, 5, 1}, {100, 75, 25}}
	for _, c := range cases {
		if got := gcdOf(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
