package bench

// IIR rebuilds the CEP IIR benchmark: a biquad (second-order section)
// core with gain, delay-line, control, and wide transport modules. Pin
// counts follow Table 1: 5 modules, 5 instances, I/O from 66 (iir_sos)
// to 384. Under cfg1 even the smallest module (66 pins) exceeds the
// 64-pin eFPGA, so filtering yields no candidate — the paper's
// "flow cannot continue" case.
func IIR() string {
	return `
// Reconstructed CEP IIR benchmark (see package bench documentation).
module iir (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [15:0] x_in,
  input wire [63:0] cfg,
  output wire [15:0] y_out,
  output wire ovf
);
  wire [15:0] sos_y;
  wire [15:0] gain_y;
  wire [31:0] gain_acc;
  wire [15:0] d0, d1, d2, d3, d4, d5, d6;
  wire [63:0] state;
  wire [69:0] status;
  wire [183:0] vec_out;
  wire [12:0] chk;

  iir_sos u_sos (
    .clk(clk), .rst(rst), .x(x_in), .b0(cfg[15:0]), .a1(cfg[31:16]),
    .y(sos_y)
  );
  iir_gain u_gain (
    .clk(clk), .rst(rst), .en(en), .mode(cfg[35:32]),
    .g(cfg[51:36]), .x(sos_y), .y(gain_y), .acc(gain_acc), .ovf(ovf)
  );
  iir_dline u_dline (
    .clk(clk), .rst(rst), .x(gain_y),
    .y0(d0), .y1(d1), .y2(d2), .y3(d3), .y4(d4), .y5(d5), .y6(d6)
  );
  iir_ctl u_ctl (
    .clk(clk), .rst(rst), .cfg(cfg), .state(state), .status(status)
  );
  iir_wide u_wide (
    .clk(clk), .rst(rst), .en(en),
    .vec_in({state, d0, d1, d2, d3, d4, d5, gain_acc[7:0], status[15:0]}),
    .vec_out(vec_out), .chk(chk)
  );
  assign y_out = vec_out[15:0] ^ d6 ^ {3'd0, chk};
endmodule

// iir_sos: second-order section with two 16x16 truncated multipliers
// (66 pins) -- the heavyweight candidate that needs a large fabric.
module iir_sos (
  input wire clk,
  input wire rst,
  input wire [15:0] x,
  input wire [15:0] b0,
  input wire [15:0] a1,
  output reg [15:0] y
);
  reg [15:0] w1;
  reg [15:0] w2;
  wire [15:0] ff = x * b0;
  wire [15:0] fb = y * a1;
  wire [15:0] next_w = ff - fb + w1;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      y <= 16'd0;
      w1 <= 16'd0;
      w2 <= 16'd0;
    end else begin
      y <= next_w + w2;
      w1 <= w2 - fb;
      w2 <= ff;
    end
  end
endmodule

// iir_gain: output scaling stage (88 pins).
module iir_gain (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [3:0] mode,
  input wire [15:0] g,
  input wire [15:0] x,
  output reg [15:0] y,
  output reg [31:0] acc,
  output wire ovf
);
  reg [15:0] scaled;
  always @(*) begin
    case (mode[1:0])
      2'd0: scaled = x;
      2'd1: scaled = x << 1;
      2'd2: scaled = x >> 1;
      default: scaled = x ^ g;
    endcase
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      y <= 16'd0;
      acc <= 32'd0;
    end else if (en) begin
      y <= scaled + (mode[2] ? g : 16'd0);
      acc <= acc + {16'd0, scaled};
    end
  end
  assign ovf = acc[31] ^ mode[3];
endmodule

// iir_dline: seven-deep output delay line (130 pins).
module iir_dline (
  input wire clk,
  input wire rst,
  input wire [15:0] x,
  output reg [15:0] y0,
  output reg [15:0] y1,
  output reg [15:0] y2,
  output reg [15:0] y3,
  output reg [15:0] y4,
  output reg [15:0] y5,
  output reg [15:0] y6
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      y0 <= 16'd0;
      y1 <= 16'd0;
      y2 <= 16'd0;
      y3 <= 16'd0;
      y4 <= 16'd0;
      y5 <= 16'd0;
      y6 <= 16'd0;
    end else begin
      y0 <= x;
      y1 <= y0;
      y2 <= y1;
      y3 <= y2;
      y4 <= y3;
      y5 <= y4;
      y6 <= y5;
    end
  end
endmodule

// iir_ctl: configuration/status block (200 pins).
module iir_ctl (
  input wire clk,
  input wire rst,
  input wire [63:0] cfg,
  output reg [63:0] state,
  output reg [69:0] status
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 64'd0;
      status <= 70'd0;
    end else begin
      state <= state ^ cfg;
      status <= {status[68:0], ^cfg};
    end
  end
endmodule

// iir_wide: wide transport pipeline (384 pins).
module iir_wide (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [183:0] vec_in,
  output reg [183:0] vec_out,
  output reg [12:0] chk
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      vec_out <= 184'd0;
      chk <= 13'd0;
    end else if (en) begin
      vec_out <= vec_in + vec_out;
      chk <= chk ^ vec_in[12:0] ^ vec_in[31:19];
    end
  end
endmodule
`
}
