package bench

import (
	"fmt"
	"strings"
)

// DES3 rebuilds the CEP triple-DES benchmark: a top module iterating a
// round function (crp) over sixteen rounds with a key schedule
// (key_sel), an initial-permutation block (ip_perm), and eight
// registered S-boxes instantiated inside the round function.
//
// Structure matches Table 1: 11 non-top modules, 11 instances, I/O pins
// from 12 (each S-box) to 301 (crp). Each S-box has exactly 12 pins
// (clk, rst, addr[5:0], dout[3:0]), so clusters of up to five fit a
// 64-pin eFPGA and all eight fit a 96-pin one, as in the paper's two
// configurations.
func DES3() string {
	var b strings.Builder
	b.WriteString(`
// Reconstructed CEP DES3 benchmark (see package bench documentation).
module des3 (
  input wire clk,
  input wire rst,
  input wire ld,
  input wire decrypt,
  input wire [63:0] desIn,
  input wire [55:0] key1,
  input wire [55:0] key2,
  input wire [55:0] key3,
  output wire [63:0] desOut,
  output wire out_rdy
);
  reg [3:0] roundSel;
  reg active;
  wire [63:0] ip_out;
  wire [167:0] keyBus = {key3, key2, key1};
  wire [47:0] k_sub;
  wire [63:0] round_out;
  reg [63:0] state;

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      roundSel <= 4'd0;
      active <= 1'b0;
      state <= 64'd0;
    end else begin
      if (ld) begin
        roundSel <= 4'd0;
        active <= 1'b1;
        state <= ip_out;
      end else if (active) begin
        roundSel <= roundSel + 4'd1;
        state <= round_out;
        if (roundSel == 4'd15)
          active <= 1'b0;
      end
    end
  end

  ip_perm u_ip (.din(desIn), .dout(ip_out));
  key_sel u_key (
    .clk(clk), .rst(rst),
    .keys(keyBus), .roundSel(roundSel), .decrypt(decrypt),
    .k_sub(k_sub)
  );
  crp u_crp (
    .clk(clk),
    .din(state), .key(keyBus), .sel(roundSel),
    .dout(round_out)
  );
  assign desOut = state ^ {8{k_sub[7:0]}};
  assign out_rdy = ~active;
endmodule

// ip_perm: initial permutation network (128 pins, pure wiring plus a
// diffusion layer so synthesis cannot collapse it).
module ip_perm (
  input wire [63:0] din,
  output wire [63:0] dout
);
  wire [63:0] sw = {din[31:0], din[63:32]};
  assign dout = {sw[62:0], sw[63]} ^ {din[0], din[63:1]};
endmodule

// key_sel: key schedule (223 pins), selects the round subkey.
module key_sel (
  input wire clk,
  input wire rst,
  input wire [167:0] keys,
  input wire [3:0] roundSel,
  input wire decrypt,
  output reg [47:0] k_sub
);
  wire [55:0] k1 = keys[55:0];
  wire [55:0] k2 = keys[111:56];
  wire [55:0] k3 = keys[167:112];
  wire [55:0] kx = decrypt ? k3 : k1;
  wire [55:0] rot = {kx[54:0], kx[55]} ^ {k2[27:0], k2[55:28]};
  wire [47:0] pick;
  assign pick = rot[47:0] ^ {rot[55:48], rot[55:16]} ^ {44'd0, roundSel};
  always @(posedge clk or posedge rst) begin
    if (rst)
      k_sub <= 48'd0;
    else
      k_sub <= pick;
  end
endmodule
`)
	// The round function instantiating the eight S-boxes (301 pins:
	// clk + din 64 + key 168 + sel 4 + dout 64).
	b.WriteString(`
// crp: one DES round (301 pins), hosting the eight S-boxes.
module crp (
  input wire clk,
  input wire [63:0] din,
  input wire [167:0] key,
  input wire [3:0] sel,
  output wire [63:0] dout
);
  wire [31:0] l = din[63:32];
  wire [31:0] r = din[31:0];
  wire [47:0] e = {r[0], r[31:27], r[28:23], r[24:19], r[20:15],
                   r[16:11], r[12:7], r[8:3], r[4:0], r[31]};
  wire [47:0] k_mix = key[47:0] ^ {key[95:52], sel} ^ key[167:120];
  wire [47:0] x = e ^ k_mix;
  wire [31:0] s_out;
`)
	for i := 1; i <= 8; i++ {
		hi := 48 - (i-1)*6 - 1
		lo := 48 - i*6
		oHi := 32 - (i-1)*4 - 1
		oLo := 32 - i*4
		fmt.Fprintf(&b, "  sbox%d u_sbox%d (.clk(clk), .rst(1'b0), .addr(x[%d:%d]), .dout(s_out[%d:%d]));\n",
			i, i, hi, lo, oHi, oLo)
	}
	b.WriteString(`
  wire [31:0] p = {s_out[15:0], s_out[31:16]} ^ {s_out[7:0], s_out[31:8]};
  assign dout = {r, l ^ p};
endmodule
`)
	// Eight S-boxes, 12 pins each: clk, rst, addr[5:0], dout[3:0].
	// Contents: sbox1 uses the FIPS-46 S1 table; the others use
	// deterministic irregular tables (see package doc) so the logic
	// volume stays realistic and does not optimize away.
	s1 := []int{
		14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
		0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
		4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
		15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
	}
	for i := 1; i <= 8; i++ {
		table := make([]int, 64)
		if i == 1 {
			copy(table, s1)
		} else {
			g := lcg(0x9E3779B97F4A7C15 * uint64(i))
			perm := make([]int, 16)
			for j := range perm {
				perm[j] = j
			}
			for j := 15; j > 0; j-- {
				k := g.intn(j + 1)
				perm[j], perm[k] = perm[k], perm[j]
			}
			for j := 0; j < 64; j++ {
				table[j] = perm[s1[(j*7+11*i)%64]] ^ g.intn(16)&0x3
			}
		}
		fmt.Fprintf(&b, `
module sbox%d (
  input wire clk,
  input wire rst,
  input wire [5:0] addr,
  output reg [3:0] dout
);
  reg [3:0] t1;
  always @(*) begin
    case (addr)
`, i)
		for j := 0; j < 64; j++ {
			fmt.Fprintf(&b, "      6'd%d: t1 = 4'd%d;\n", j, table[j])
		}
		fmt.Fprintf(&b, `      default: t1 = 4'd0;
    endcase
  end
  always @(posedge clk) begin
    dout <= t1 ^ {addr[0], addr[3], addr[1], addr[5]};
  end
endmodule
`)
	}
	return b.String()
}
