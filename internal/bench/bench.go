// Package bench reconstructs the benchmark suite of Table 1 of the
// ALICE paper (CEP's DES3/FIR/IIR/SHA256, IWLS05's SASC/USB_PHY,
// OpenROAD's GCD) as synthesizable Verilog in the subset of
// internal/verilog. The originals are not redistributable inside this
// module, so each design is rebuilt to match the structural
// characteristics the flow depends on — module count, instance count,
// and per-module I/O pin counts — with functional logic of comparable
// volume (see DESIGN.md, substitutions). S-box and coefficient tables
// are deterministic but representative, not standards-accurate.
package bench

// Benchmark bundles a design with the flow inputs used in the paper's
// evaluation.
type Benchmark struct {
	Name string
	// Suite is the originating benchmark collection (for Table 1).
	Suite string
	// Source returns the full Verilog text.
	Source func() string
	// SelectedOutputs are the protected outputs fed to module filtering.
	SelectedOutputs []string
	// Table1 rows from the paper, for EXPERIMENTS.md comparison.
	PaperModules   int
	PaperInstances int
	PaperMinPins   int
	PaperMaxPins   int
}

// All returns the benchmark suite in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{
			Name: "des3", Suite: "CEP", Source: DES3,
			SelectedOutputs: []string{"desOut"},
			PaperModules:    11, PaperInstances: 11, PaperMinPins: 12, PaperMaxPins: 301,
		},
		{
			Name: "fir", Suite: "CEP", Source: FIR,
			SelectedOutputs: []string{"y_out"},
			PaperModules:    5, PaperInstances: 5, PaperMinPins: 64, PaperMaxPins: 384,
		},
		{
			Name: "iir", Suite: "CEP", Source: IIR,
			SelectedOutputs: []string{"y_out"},
			PaperModules:    5, PaperInstances: 5, PaperMinPins: 66, PaperMaxPins: 384,
		},
		{
			Name: "sha256", Suite: "CEP", Source: SHA256,
			SelectedOutputs: []string{"digest"},
			PaperModules:    3, PaperInstances: 3, PaperMinPins: 38, PaperMaxPins: 774,
		},
		{
			Name: "sasc", Suite: "IWLS05", Source: SASC,
			SelectedOutputs: []string{"txd", "sio_ce"},
			PaperModules:    2, PaperInstances: 3, PaperMinPins: 23, PaperMaxPins: 28,
		},
		{
			Name: "usb_phy", Suite: "IWLS05", Source: USBPHY,
			SelectedOutputs: []string{"txdp", "txdn", "rx_data", "rx_valid"},
			PaperModules:    3, PaperInstances: 3, PaperMinPins: 17, PaperMaxPins: 33,
		},
		{
			Name: "gcd", Suite: "OpenROAD", Source: GCD,
			SelectedOutputs: []string{"result"},
			PaperModules:    10, PaperInstances: 11, PaperMinPins: 6, PaperMaxPins: 68,
		},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// lcg is a tiny deterministic generator for table contents.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = (*l)*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 17
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }
