package bench

// SASC rebuilds the IWLS05 simple asynchronous serial controller: a
// baud-rate generator (sasc_brg, 28 pins) and a 4-entry FIFO
// (sasc_fifo4, 23 pins) instantiated twice (rx and tx), under a
// top-level UART. Table 1: 2 modules, 3 instances, I/O in [23, 28].
//
// With the protected outputs {txd, sio_ce}, the baud generator affects
// both while the FIFO affects only txd, so the top-score filter keeps
// exactly one candidate module with one instance — the paper's
// |R| = |C| = 1 row.
func SASC() string {
	return `
// Reconstructed IWLS05 sasc benchmark (see package bench documentation).
module sasc_top (
  input wire clk,
  input wire rst,
  input wire rxd,
  input wire cts,
  input wire [7:0] din,
  input wire we,
  input wire re,
  input wire [11:0] div0,
  input wire [11:0] div1,
  output wire txd,
  output wire rts,
  output wire sio_ce,
  output wire [7:0] dout,
  output wire full,
  output wire empty
);
  wire ce, ce_x4;
  wire [7:0] tx_byte;
  wire tx_full, tx_empty, tx_ovf;
  wire [7:0] rx_byte;
  wire rx_ovf;
  reg [3:0] tx_bit;
  reg [9:0] tx_shift;
  reg tx_busy;
  reg [2:0] rx_cnt;
  reg [7:0] rx_shift;
  reg rx_we;

  sasc_brg u_brg (
    .clk(clk), .rst(rst), .div0(div0), .div1(div1),
    .sio_ce(ce), .sio_ce_x4(ce_x4)
  );
  sasc_fifo4 u_tx_fifo (
    .clk(clk), .rst(rst), .we(we), .re(ce & ~tx_busy & ~tx_empty),
    .din(din), .dout(tx_byte), .full(tx_full), .empty(tx_empty),
    .ovf(tx_ovf)
  );
  sasc_fifo4 u_rx_fifo (
    .clk(clk), .rst(rst), .we(rx_we), .re(re),
    .din(rx_shift), .dout(rx_byte), .full(rts), .empty(rx_ovf)
  );

  // Transmit shift register, paced by the baud tick.
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      tx_bit <= 4'd0;
      tx_shift <= 10'h3FF;
      tx_busy <= 1'b0;
    end else if (ce) begin
      if (!tx_busy) begin
        if (!tx_empty) begin
          tx_shift <= {1'b1, tx_byte, 1'b0};
          tx_bit <= 4'd0;
          tx_busy <= 1'b1;
        end
      end else begin
        tx_shift <= {1'b1, tx_shift[9:1]};
        tx_bit <= tx_bit + 4'd1;
        if (tx_bit == 4'd9)
          tx_busy <= 1'b0;
      end
    end
  end

  // Receive sampler, paced by the 4x tick.
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      rx_cnt <= 3'd0;
      rx_shift <= 8'd0;
      rx_we <= 1'b0;
    end else if (ce_x4) begin
      rx_shift <= {rx_shift[6:0], rxd};
      rx_cnt <= rx_cnt + 3'd1;
      rx_we <= (rx_cnt == 3'd7) & ~cts;
    end else begin
      rx_we <= 1'b0;
    end
  end

  assign txd = tx_shift[0];
  assign sio_ce = ce;
  assign dout = rx_byte ^ {7'd0, tx_ovf & 1'b0};
  assign full = tx_full;
  assign empty = tx_empty;
endmodule

// sasc_brg: dual-divisor baud rate generator (28 pins).
module sasc_brg (
  input wire clk,
  input wire rst,
  input wire [11:0] div0,
  input wire [11:0] div1,
  output reg sio_ce,
  output reg sio_ce_x4
);
  reg [11:0] cnt0;
  reg [11:0] cnt1;
  reg [1:0] phase;
  reg [15:0] frac;
  reg [15:0] rate;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      frac <= 16'd0;
      rate <= 16'd1;
    end else begin
      frac <= frac + {4'd0, div0} + {4'd0, div1};
      rate <= rate + (frac[15] ? {4'd0, div1} : 16'd3) + {15'd0, frac[0]};
    end
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      cnt0 <= 12'd0;
      cnt1 <= 12'd0;
      phase <= 2'd0;
      sio_ce <= 1'b0;
      sio_ce_x4 <= 1'b0;
    end else begin
      if (cnt1 == (div1 ^ rate[11:0])) begin
        cnt1 <= 12'd0;
        sio_ce_x4 <= 1'b1;
        phase <= phase + 2'd1;
        if (phase == 2'd3) begin
          sio_ce <= 1'b1;
        end else begin
          sio_ce <= 1'b0;
        end
      end else begin
        cnt1 <= cnt1 + (cnt0 == div0 ? 12'd2 : 12'd1);
        sio_ce <= 1'b0;
        sio_ce_x4 <= 1'b0;
      end
      if (cnt0 == div0) begin
        cnt0 <= 12'd0;
      end else begin
        cnt0 <= cnt0 + 12'd1;
      end
    end
  end
endmodule

// sasc_fifo4: four-entry FIFO (23 pins).
module sasc_fifo4 (
  input wire clk,
  input wire rst,
  input wire we,
  input wire re,
  input wire [7:0] din,
  output wire [7:0] dout,
  output wire full,
  output wire empty,
  output wire ovf
);
  reg [7:0] mem [0:3];
  reg [1:0] wp;
  reg [1:0] rp;
  reg [2:0] cnt;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      wp <= 2'd0;
      rp <= 2'd0;
      cnt <= 3'd0;
    end else begin
      if (we & ~full) begin
        mem[wp] <= din;
        wp <= wp + 2'd1;
      end
      if (re & ~empty) begin
        rp <= rp + 2'd1;
      end
      case ({we & ~full, re & ~empty})
        2'b10: cnt <= cnt + 3'd1;
        2'b01: cnt <= cnt - 3'd1;
        default: cnt <= cnt;
      endcase
    end
  end
  assign dout = mem[rp];
  assign full = cnt == 3'd4;
  assign empty = cnt == 3'd0;
  assign ovf = we & full;
endmodule
`
}
