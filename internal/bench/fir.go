package bench

// FIR rebuilds the CEP FIR benchmark: a 4-tap filter pipeline with a
// MAC tap cell, a coefficient store, a shift line, an accumulator, and
// a wide transport pipeline. Pin counts follow Table 1: 5 modules, 5
// instances, I/O from 64 (fir_tap) to 384 (fir_pipe); under cfg2 the
// three modules at 64/72/96 pins are candidates and no pair fits 96
// pins, giving three singleton clusters as in the paper.
func FIR() string {
	return `
// Reconstructed CEP FIR benchmark (see package bench documentation).
module fir (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [15:0] x_in,
  output wire [15:0] y_out,
  output wire valid
);
  wire [15:0] t0, t1, t2, t3;
  wire [12:0] sum_lo;
  wire [15:0] coef_a, coef_b, coef_c;
  wire [15:0] mac_out;
  wire [31:0] acc;
  wire [4:0] sat;
  wire [183:0] vec_out;
  wire [12:0] chk;

  fir_shift u_shift (
    .clk(clk), .rst(rst), .en(en), .x_in(x_in),
    .t0(t0), .t1(t1), .t2(t2), .t3(t3), .sum_lo(sum_lo)
  );
  fir_coeff u_coeff (
    .clk(clk), .rst(rst), .ld(en), .idx(sum_lo[2:0]), .sel(sum_lo[4:3]),
    .wdata(x_in), .coef_a(coef_a), .coef_b(coef_b), .coef_c(coef_c)
  );
  fir_tap u_tap (
    .x(t0), .c(coef_a), .a_in(t1), .a_out(mac_out)
  );
  fir_acc u_acc (
    .clk(clk), .rst(rst), .clr(~en),
    .s0(mac_out), .s1(t2 ^ coef_b), .s2(t3), .s3(coef_c),
    .round(x_in), .acc(acc), .sat(sat)
  );
  fir_pipe u_pipe (
    .clk(clk), .rst(rst), .en(en),
    .vec_in({acc, mac_out, t0, t1, t2, t3, coef_a, coef_b, x_in, sum_lo[7:0]}),
    .vec_out(vec_out), .chk(chk)
  );
  assign y_out = vec_out[15:0] ^ acc[15:0];
  assign valid = sat[0] ^ chk[0];
endmodule

// fir_tap: multiply-accumulate cell (64 pins). The only cfg1 candidate.
module fir_tap (
  input wire [15:0] x,
  input wire [15:0] c,
  input wire [15:0] a_in,
  output wire [15:0] a_out
);
  wire [11:0] prod = x[5:0] * c[5:0];
  wire [15:0] hi = {x[15:8] & c[15:8], x[15:8] ^ c[15:8]};
  assign a_out = a_in + {4'd0, prod} + {hi[7:0], 4'd0};
endmodule

// fir_coeff: coefficient store with update port (72 pins).
module fir_coeff (
  input wire clk,
  input wire rst,
  input wire ld,
  input wire [2:0] idx,
  input wire [1:0] sel,
  input wire [15:0] wdata,
  output reg [15:0] coef_a,
  output reg [15:0] coef_b,
  output reg [15:0] coef_c
);
  reg [15:0] bank [0:7];
  always @(posedge clk) begin
    if (ld) bank[idx] <= wdata;
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      coef_a <= 16'h2001;
      coef_b <= 16'h0F3C;
      coef_c <= 16'hA55A;
    end else begin
      case (sel)
        2'd0: coef_a <= bank[idx];
        2'd1: coef_b <= bank[idx] ^ 16'h00FF;
        2'd2: coef_c <= bank[idx] + coef_a;
        default: coef_a <= coef_a;
      endcase
    end
  end
endmodule

// fir_shift: input delay line (96 pins).
module fir_shift (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [15:0] x_in,
  output reg [15:0] t0,
  output reg [15:0] t1,
  output reg [15:0] t2,
  output reg [15:0] t3,
  output wire [12:0] sum_lo
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      t0 <= 16'd0;
      t1 <= 16'd0;
      t2 <= 16'd0;
      t3 <= 16'd0;
    end else if (en) begin
      t0 <= x_in;
      t1 <= t0;
      t2 <= t1;
      t3 <= t2;
    end
  end
  assign sum_lo = t0[12:0] + t1[12:0] + t2[12:0] + t3[12:0];
endmodule

// fir_acc: accumulator with saturation flags (120 pins).
module fir_acc (
  input wire clk,
  input wire rst,
  input wire clr,
  input wire [15:0] s0,
  input wire [15:0] s1,
  input wire [15:0] s2,
  input wire [15:0] s3,
  input wire [15:0] round,
  output reg [31:0] acc,
  output reg [4:0] sat
);
  wire [31:0] sum = {16'd0, s0} + {16'd0, s1} + {16'd0, s2} + {16'd0, s3};
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      acc <= 32'd0;
      sat <= 5'd0;
    end else if (clr) begin
      acc <= {16'd0, round};
      sat <= 5'd0;
    end else begin
      acc <= acc + sum;
      sat <= {sat[3:0], acc[31]};
    end
  end
endmodule

// fir_pipe: wide transport pipeline (384 pins).
module fir_pipe (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [183:0] vec_in,
  output reg [183:0] vec_out,
  output reg [12:0] chk
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      vec_out <= 184'd0;
      chk <= 13'd0;
    end else if (en) begin
      vec_out <= vec_in ^ {vec_out[182:0], vec_out[183]};
      chk <= vec_in[12:0] + vec_in[25:13] + chk;
    end
  end
endmodule
`
}
