package bench

// USBPHY rebuilds the IWLS05 usb_phy benchmark: receive and transmit
// PHYs plus a line-state monitor. Table 1: 3 modules, 3 instances, I/O
// in [17, 33]. The line-state monitor drives only unprotected status
// outputs, so filtering keeps the rx/tx pair (|R| = 2), which forms
// three clusters ({rx}, {tx}, {rx, tx}) under both configurations.
func USBPHY() string {
	return `
// Reconstructed IWLS05 usb_phy benchmark (see package bench doc).
module usb_phy (
  input wire clk,
  input wire rst,
  input wire rxdp,
  input wire rxdn,
  input wire rx_en,
  input wire [15:0] tx_data,
  input wire tx_valid,
  output wire txdp,
  output wire txdn,
  output wire tx_ready,
  output wire [15:0] rx_data,
  output wire rx_valid,
  output wire rx_active,
  output wire rx_error,
  output wire [7:0] ls_mode,
  output wire ls_valid
);
  wire fs_ce;
  wire [1:0] line_state;
  wire sync_err, stuff_err, strobe, idle;
  wire [1:0] dpll;
  wire [3:0] ls_cnt;
  wire txoe;
  reg [1:0] ce_cnt;

  // Independent full-speed tick for the transmitter, so the rx and tx
  // paths stay functionally decoupled.
  always @(posedge clk or posedge rst) begin
    if (rst)
      ce_cnt <= 2'd0;
    else
      ce_cnt <= ce_cnt + 2'd1;
  end

  usb_rx_phy u_rx (
    .clk(clk), .rst(rst), .fs_ce(fs_ce), .rxdp(rxdp), .rxdn(rxdn),
    .rx_en(rx_en), .data_out(rx_data), .rx_valid(rx_valid),
    .rx_active(rx_active), .rx_err(rx_error), .line_state(line_state),
    .sync_err(sync_err), .stuff_err(stuff_err), .dpll(dpll),
    .strobe(strobe), .idle(idle)
  );
  usb_tx_phy u_tx (
    .clk(clk), .rst(rst), .fs_ce(ce_cnt == 2'd3), .data_in(tx_data),
    .tx_valid(tx_valid), .tx_ready(tx_ready), .txdp(txdp), .txdn(txdn),
    .txoe(txoe), .hold(1'b0), .ls_sel(ce_cnt[0])
  );
  usb_ls u_ls (
    .clk(clk), .rst(rst), .rxdp(rxdp), .rxdn(rxdn),
    .ls_mode(ls_mode), .ls_valid(ls_valid), .ls_cnt(ls_cnt)
  );
  assign fs_ce = strobe ^ idle;
endmodule

// usb_rx_phy: receive PHY with DPLL and NRZI decode (33 pins).
module usb_rx_phy (
  input wire clk,
  input wire rst,
  input wire fs_ce,
  input wire rxdp,
  input wire rxdn,
  input wire rx_en,
  output reg [15:0] data_out,
  output reg rx_valid,
  output reg rx_active,
  output reg rx_err,
  output wire [1:0] line_state,
  output reg sync_err,
  output reg stuff_err,
  output reg [1:0] dpll,
  output wire strobe,
  output wire idle
);
  reg [15:0] shift;
  reg [3:0] bitcnt;
  reg [2:0] ones;
  reg last;
  wire din = rxdp & ~rxdn;
  wire nrzi = ~(din ^ last);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      dpll <= 2'd0;
      shift <= 16'd0;
      bitcnt <= 4'd0;
      ones <= 3'd0;
      last <= 1'b0;
      data_out <= 16'd0;
      rx_valid <= 1'b0;
      rx_active <= 1'b0;
      rx_err <= 1'b0;
      sync_err <= 1'b0;
      stuff_err <= 1'b0;
    end else begin
      dpll <= dpll + 2'd1;
      rx_valid <= 1'b0;
      if (fs_ce & rx_en) begin
        last <= din;
        if (ones == 3'd6) begin
          stuff_err <= nrzi;
          ones <= 3'd0;
        end else begin
          shift <= {nrzi, shift[15:1]};
          bitcnt <= bitcnt + 4'd1;
          if (nrzi)
            ones <= ones + 3'd1;
          else
            ones <= 3'd0;
          if (bitcnt == 4'd15) begin
            data_out <= {nrzi, shift[15:1]};
            rx_valid <= 1'b1;
            rx_active <= 1'b1;
          end
        end
        sync_err <= (rxdp & rxdn);
        rx_err <= (rxdp & rxdn) | stuff_err;
      end
      if (~rx_en)
        rx_active <= 1'b0;
    end
  end
  assign line_state = {rxdp, rxdn};
  assign strobe = dpll == 2'd3;
  assign idle = ~rxdp & ~rxdn;
endmodule

// usb_tx_phy: transmit PHY with NRZI encode and bit stuffing (26 pins).
module usb_tx_phy (
  input wire clk,
  input wire rst,
  input wire fs_ce,
  input wire [15:0] data_in,
  input wire tx_valid,
  output wire tx_ready,
  output reg txdp,
  output reg txdn,
  output reg txoe,
  input wire hold,
  input wire ls_sel
);
  reg [15:0] shift;
  reg [3:0] bitcnt;
  reg [2:0] ones;
  reg busy;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      shift <= 16'd0;
      bitcnt <= 4'd0;
      ones <= 3'd0;
      busy <= 1'b0;
      txdp <= 1'b1;
      txdn <= 1'b0;
      txoe <= 1'b0;
    end else if (fs_ce & ~hold) begin
      if (!busy) begin
        if (tx_valid) begin
          shift <= data_in;
          bitcnt <= 4'd0;
          busy <= 1'b1;
          txoe <= 1'b1;
        end else begin
          txoe <= 1'b0;
          txdp <= ~ls_sel;
          txdn <= ls_sel;
        end
      end else begin
        if (ones == 3'd6) begin
          txdp <= ~txdp;
          txdn <= ~txdn;
          ones <= 3'd0;
        end else begin
          if (shift[0]) begin
            ones <= ones + 3'd1;
          end else begin
            txdp <= ~txdp;
            txdn <= ~txdn;
            ones <= 3'd0;
          end
          shift <= {1'b0, shift[15:1]};
          bitcnt <= bitcnt + 4'd1;
          if (bitcnt == 4'd15)
            busy <= 1'b0;
        end
      end
    end
  end
  assign tx_ready = ~busy;
endmodule

// usb_ls: line-state monitor (17 pins); drives only status outputs.
module usb_ls (
  input wire clk,
  input wire rst,
  input wire rxdp,
  input wire rxdn,
  output reg [7:0] ls_mode,
  output reg ls_valid,
  output reg [3:0] ls_cnt
);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      ls_mode <= 8'd0;
      ls_valid <= 1'b0;
      ls_cnt <= 4'd0;
    end else begin
      ls_mode <= {ls_mode[5:0], rxdp, rxdn};
      ls_cnt <= ls_cnt + {3'd0, rxdp ^ rxdn};
      ls_valid <= ls_mode == 8'h2A;
    end
  end
endmodule
`
}
